//! Cardinality statistics over an [`Instance`], feeding the planner.
//!
//! The optimizer in [`crate::optimize`] needs two things a classical
//! OLTP statistics collector would provide: per-relation row counts (to
//! pick the cheaper hash-build side and to decide whether hash machinery
//! pays for itself at all) and per-column distinct counts (equality
//! selectivity). Both are exact here, not sampled — the instances the
//! verifier plans against are the per-core base databases, small enough
//! to scan outright.
//!
//! Statistics are a *snapshot*: the per-step working instances add a few
//! extension/input tuples on top of the base the snapshot was taken
//! from, so [`InstanceStats::estimate`] treats every count as a lower
//! bound with +1 smoothing rather than an exact value.

use crate::instance::Instance;
use crate::plan::{JoinKind, Plan, Pred, Scalar};
use crate::schema::RelId;

/// Exact statistics for one relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Number of tuples.
    pub rows: usize,
    /// Distinct values per column (`distinct.len()` = arity).
    pub distinct: Vec<usize>,
}

/// Statistics for every relation of an instance, indexed by [`RelId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InstanceStats {
    rels: Vec<RelStats>,
}

impl InstanceStats {
    /// Scan `inst` and collect exact row and per-column distinct counts.
    pub fn collect(inst: &Instance) -> InstanceStats {
        let schema = inst.schema();
        let rels = schema
            .rels()
            .map(|id| {
                let rel = inst.rel(id);
                let arity = schema.arity(id);
                let mut distinct = Vec::with_capacity(arity);
                for col in 0..arity {
                    let mut vals: Vec<_> = rel.iter().map(|t| t.get(col)).collect();
                    vals.sort_unstable();
                    vals.dedup();
                    distinct.push(vals.len());
                }
                RelStats { rows: rel.len(), distinct }
            })
            .collect();
        InstanceStats { rels }
    }

    /// Row count of a relation at snapshot time.
    pub fn rows(&self, rel: RelId) -> usize {
        self.rels.get(rel.index()).map_or(0, |s| s.rows)
    }

    /// Distinct values in one column at snapshot time (0 when empty).
    pub fn distinct(&self, rel: RelId, col: usize) -> usize {
        self.rels.get(rel.index()).and_then(|s| s.distinct.get(col)).copied().unwrap_or(0)
    }

    /// Estimated output rows of `plan` over an instance grown from the
    /// snapshot. Counts smooth by +1 (the working instance holds at
    /// least the snapshot plus the step's own facts), equality
    /// predicates use `1/distinct` selectivity, and everything clamps to
    /// ≥ 0 — the estimate guides build-side choice and the hash
    /// threshold, never correctness.
    pub fn estimate(&self, plan: &Plan) -> f64 {
        match plan {
            Plan::Scan(r) => self.rows(*r) as f64 + 1.0,
            Plan::Values { rows, .. } => rows.len() as f64,
            Plan::Select { input, pred } => self.estimate(input) * self.selectivity(input, pred),
            Plan::Project { input, .. } => self.estimate(input),
            Plan::Product(l, r) => self.estimate(l) * self.estimate(r),
            Plan::Union(l, r) => self.estimate(l) + self.estimate(r),
            Plan::Difference(l, _) => self.estimate(l),
            Plan::SemiJoin { left, .. } | Plan::AntiJoin { left, .. } => self.estimate(left) * 0.5,
            Plan::HashJoin { left, right, on, kind } => match kind {
                JoinKind::Inner => {
                    let key_card = on
                        .iter()
                        .map(|&(lc, _)| self.column_distinct(left, lc).max(1.0))
                        .fold(1.0f64, f64::max);
                    self.estimate(left) * self.estimate(right) / key_card
                }
                JoinKind::Semi | JoinKind::Anti => self.estimate(left) * 0.5,
            },
        }
    }

    /// Distinct-count estimate for column `col` of a plan's output; only
    /// scans give a real figure, everything else falls back to the row
    /// estimate (a safe overestimate of distinctness).
    fn column_distinct(&self, plan: &Plan, col: usize) -> f64 {
        match plan {
            Plan::Scan(r) => self.distinct(*r, col) as f64 + 1.0,
            Plan::Select { input, .. } => self.column_distinct(input, col),
            Plan::Project { input, cols } => match cols.get(col) {
                Some(Scalar::Col(c)) => self.column_distinct(input, *c),
                Some(_) => 1.0,
                None => self.estimate(plan),
            },
            _ => self.estimate(plan),
        }
    }

    /// Predicate selectivity in `[0, 1]`.
    fn selectivity(&self, input: &Plan, pred: &Pred) -> f64 {
        match pred {
            Pred::True => 1.0,
            Pred::False => 0.0,
            Pred::Eq(a, b) => {
                let card = |s: &Scalar| match s {
                    Scalar::Col(c) => self.column_distinct(input, *c),
                    _ => 1.0,
                };
                1.0 / card(a).max(card(b)).max(1.0)
            }
            Pred::Ne(..) => 0.9,
            Pred::And(ps) => ps.iter().map(|p| self.selectivity(input, p)).product(),
            Pred::Or(ps) => ps.iter().map(|p| self.selectivity(input, p)).sum::<f64>().min(1.0),
            Pred::Not(p) => (1.0 - self.selectivity(input, p)).max(0.0),
            Pred::EmptyFlag(_) => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelKind, Schema};
    use crate::tuple::Tuple;
    use crate::value::Value;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.declare("edge", 2, RelKind::Database).unwrap();
        s.declare("mark", 1, RelKind::State).unwrap();
        let s = Arc::new(s);
        let mut inst = Instance::empty(Arc::clone(&s));
        let edge = s.lookup("edge").unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 3)] {
            inst.insert(edge, Tuple::from([Value(a), Value(b)]));
        }
        (s, inst)
    }

    #[test]
    fn collect_counts_rows_and_distincts() {
        let (s, inst) = setup();
        let stats = InstanceStats::collect(&inst);
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        assert_eq!(stats.rows(edge), 3);
        assert_eq!(stats.distinct(edge, 0), 2, "sources 1 and 2");
        assert_eq!(stats.distinct(edge, 1), 2, "targets 2 and 3");
        assert_eq!(stats.rows(mark), 0);
        assert_eq!(stats.distinct(mark, 0), 0);
    }

    #[test]
    fn estimates_track_plan_shape() {
        let (s, inst) = setup();
        let stats = InstanceStats::collect(&inst);
        let edge = s.lookup("edge").unwrap();
        let scan = Plan::Scan(edge);
        assert_eq!(stats.estimate(&scan), 4.0, "rows + 1 smoothing");
        let product = Plan::Product(Box::new(scan.clone()), Box::new(scan.clone()));
        assert_eq!(stats.estimate(&product), 16.0);
        let select = Plan::Select {
            input: Box::new(scan.clone()),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Const(Value(1))),
        };
        assert!(stats.estimate(&select) < stats.estimate(&scan), "equality filters shrink");
        let dead = Plan::Select { input: Box::new(scan), pred: Pred::False };
        assert_eq!(stats.estimate(&dead), 0.0);
    }
}
