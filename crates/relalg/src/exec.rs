//! Plan execution over an [`Instance`] with bound parameters.
//!
//! Execution is a recursive interpreter. Nested loops remain the
//! baseline for the tiny per-step relations, but the planner in
//! [`crate::optimize`] lowers joins to [`Plan::HashJoin`] when the
//! cardinality statistics say the build side is large enough to amortize
//! a hash table; both forms canonicalize through
//! [`Relation::from_tuples`], so they produce byte-identical relations.

use crate::instance::Instance;
use crate::plan::{JoinKind, Plan, Pred, Scalar};
use crate::tuple::{Relation, Tuple};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Parameter bindings for one execution: positional values plus the
/// "empty input" flags consulted by [`Pred::EmptyFlag`].
#[derive(Clone, Debug, Default)]
pub struct Params {
    values: Vec<Option<Value>>,
    empty_flags: Vec<bool>,
}

impl Params {
    /// No parameters.
    pub fn none() -> Self {
        Params::default()
    }

    /// Build with `n` unbound slots.
    pub fn with_slots(n: usize) -> Self {
        Params { values: vec![None; n], empty_flags: vec![false; n] }
    }

    /// Bind slot `i` to a value (grows the slot vector if needed).
    pub fn bind(&mut self, i: usize, v: Value) {
        if self.values.len() <= i {
            self.values.resize(i + 1, None);
        }
        self.values[i] = Some(v);
    }

    /// Set slot `i`'s empty-input flag.
    pub fn set_empty(&mut self, i: usize, empty: bool) {
        if self.empty_flags.len() <= i {
            self.empty_flags.resize(i + 1, false);
        }
        self.empty_flags[i] = empty;
    }

    fn value(&self, i: usize) -> Result<Value, ExecError> {
        self.values.get(i).copied().flatten().ok_or(ExecError::UnboundParam(i))
    }

    fn empty(&self, i: usize) -> bool {
        self.empty_flags.get(i).copied().unwrap_or(false)
    }
}

/// Runtime execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A referenced parameter slot was never bound.
    UnboundParam(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundParam(i) => write!(f, "parameter slot {i} is unbound"),
        }
    }
}

impl std::error::Error for ExecError {}

fn scalar(s: Scalar, row: &[Value], params: &Params) -> Result<Value, ExecError> {
    match s {
        Scalar::Col(i) => Ok(row[i]),
        Scalar::Const(v) => Ok(v),
        Scalar::Param(i) => params.value(i),
    }
}

fn eval_pred(p: &Pred, row: &[Value], params: &Params) -> Result<bool, ExecError> {
    Ok(match p {
        Pred::True => true,
        Pred::False => false,
        Pred::Eq(a, b) => scalar(*a, row, params)? == scalar(*b, row, params)?,
        Pred::Ne(a, b) => scalar(*a, row, params)? != scalar(*b, row, params)?,
        Pred::And(ps) => {
            for q in ps {
                if !eval_pred(q, row, params)? {
                    return Ok(false);
                }
            }
            true
        }
        Pred::Or(ps) => {
            for q in ps {
                if eval_pred(q, row, params)? {
                    return Ok(true);
                }
            }
            false
        }
        Pred::Not(q) => !eval_pred(q, row, params)?,
        Pred::EmptyFlag(i) => params.empty(*i),
    })
}

/// Counters accumulated during one execution (fed into the search
/// profile by the caller).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Hash tables built by [`Plan::HashJoin`] nodes.
    pub hash_builds: u64,
    /// Rows inserted into hash-join build tables.
    pub rows_built: u64,
    /// Probe-side rows driven through hash-join tables.
    pub rows_probed: u64,
}

/// Execute `plan` over `inst` with `params`, producing a relation.
pub fn execute(plan: &Plan, inst: &Instance, params: &Params) -> Result<Relation, ExecError> {
    execute_counting(plan, inst, params, &mut ExecStats::default())
}

/// [`execute`], accumulating operator counters into `stats`.
pub fn execute_counting(
    plan: &Plan,
    inst: &Instance,
    params: &Params,
    stats: &mut ExecStats,
) -> Result<Relation, ExecError> {
    Ok(match plan {
        Plan::Scan(r) => inst.rel(*r).clone(),
        Plan::Values { width, rows } => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for s in row {
                    vals.push(scalar(*s, &[], params)?);
                }
                out.push(Tuple::from(vals));
            }
            Relation::from_tuples(*width, out)
        }
        Plan::Select { input, pred } => {
            let rel = execute_counting(input, inst, params, stats)?;
            let mut kept = Vec::new();
            for t in rel.iter() {
                if eval_pred(pred, t.values(), params)? {
                    kept.push(t.clone());
                }
            }
            Relation::from_tuples(rel.arity(), kept)
        }
        Plan::Project { input, cols } => {
            let rel = execute_counting(input, inst, params, stats)?;
            let mut out = Vec::with_capacity(rel.len());
            for t in rel.iter() {
                let mut vals = Vec::with_capacity(cols.len());
                for c in cols {
                    vals.push(scalar(*c, t.values(), params)?);
                }
                out.push(Tuple::from(vals));
            }
            Relation::from_tuples(cols.len(), out)
        }
        Plan::Product(l, r) => {
            let lrel = execute_counting(l, inst, params, stats)?;
            let rrel = execute_counting(r, inst, params, stats)?;
            let mut out = Vec::with_capacity(lrel.len() * rrel.len());
            for lt in lrel.iter() {
                for rt in rrel.iter() {
                    let mut vals = Vec::with_capacity(lt.arity() + rt.arity());
                    vals.extend_from_slice(lt.values());
                    vals.extend_from_slice(rt.values());
                    out.push(Tuple::from(vals));
                }
            }
            Relation::from_tuples(lrel.arity() + rrel.arity(), out)
        }
        Plan::Union(l, r) => execute_counting(l, inst, params, stats)?
            .union(&execute_counting(r, inst, params, stats)?),
        Plan::Difference(l, r) => execute_counting(l, inst, params, stats)?
            .difference(&execute_counting(r, inst, params, stats)?),
        Plan::SemiJoin { left, right, on } => {
            let lrel = execute_counting(left, inst, params, stats)?;
            let rrel = execute_counting(right, inst, params, stats)?;
            let matches = |lt: &Tuple| {
                rrel.iter().any(|rt| on.iter().all(|&(lc, rc)| lt.get(lc) == rt.get(rc)))
            };
            Relation::from_tuples(
                lrel.arity(),
                lrel.iter().filter(|t| matches(t)).cloned().collect::<Vec<_>>(),
            )
        }
        Plan::AntiJoin { left, right, on } => {
            let lrel = execute_counting(left, inst, params, stats)?;
            let rrel = execute_counting(right, inst, params, stats)?;
            let matches = |lt: &Tuple| {
                rrel.iter().any(|rt| on.iter().all(|&(lc, rc)| lt.get(lc) == rt.get(rc)))
            };
            Relation::from_tuples(
                lrel.arity(),
                lrel.iter().filter(|t| !matches(t)).cloned().collect::<Vec<_>>(),
            )
        }
        Plan::HashJoin { left, right, on, kind } => {
            let lrel = execute_counting(left, inst, params, stats)?;
            let rrel = execute_counting(right, inst, params, stats)?;
            stats.hash_builds += 1;
            stats.rows_built += rrel.len() as u64;
            stats.rows_probed += lrel.len() as u64;
            let key = |t: &Tuple, cols: &dyn Fn(&(usize, usize)) -> usize| -> Vec<Value> {
                on.iter().map(|pair| t.get(cols(pair))).collect()
            };
            match kind {
                JoinKind::Inner => {
                    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
                    for rt in rrel.iter() {
                        table.entry(key(rt, &|&(_, rc)| rc)).or_default().push(rt);
                    }
                    let mut out = Vec::new();
                    for lt in lrel.iter() {
                        if let Some(matches) = table.get(&key(lt, &|&(lc, _)| lc)) {
                            for rt in matches {
                                let mut vals = Vec::with_capacity(lt.arity() + rt.arity());
                                vals.extend_from_slice(lt.values());
                                vals.extend_from_slice(rt.values());
                                out.push(Tuple::from(vals));
                            }
                        }
                    }
                    Relation::from_tuples(lrel.arity() + rrel.arity(), out)
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let table: std::collections::HashSet<Vec<Value>> =
                        rrel.iter().map(|rt| key(rt, &|&(_, rc)| rc)).collect();
                    let keep = *kind == JoinKind::Semi;
                    Relation::from_tuples(
                        lrel.arity(),
                        lrel.iter()
                            .filter(|lt| table.contains(&key(lt, &|&(lc, _)| lc)) == keep)
                            .cloned()
                            .collect::<Vec<_>>(),
                    )
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelKind, Schema};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.declare("edge", 2, RelKind::Database).unwrap();
        s.declare("mark", 1, RelKind::State).unwrap();
        let s = Arc::new(s);
        let mut inst = Instance::empty(Arc::clone(&s));
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            inst.insert(edge, Tuple::from([Value(a), Value(b)]));
        }
        inst.insert(mark, Tuple::from([Value(2)]));
        (s, inst)
    }

    #[test]
    fn scan_and_select() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Const(Value(2))),
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(2), Value(3)])));
    }

    #[test]
    fn project_reorders_and_injects_consts() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Project {
            input: Box::new(Plan::Scan(edge)),
            cols: vec![Scalar::Col(1), Scalar::Const(Value(9))],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Tuple::from([Value(2), Value(9)])));
    }

    #[test]
    fn semijoin_keeps_matching_rows() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        // edges whose source is marked
        let plan = Plan::SemiJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![(0, 0)],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(2), Value(3)])));
    }

    #[test]
    fn antijoin_is_complement_of_semijoin() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        let anti = Plan::AntiJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![(0, 0)],
        };
        let out = execute(&anti, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn params_bind_into_predicates_and_values() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
        };
        let mut params = Params::with_slots(1);
        params.bind(0, Value(3));
        let out = execute(&plan, &inst, &params).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(3), Value(1)])));
    }

    #[test]
    fn unbound_param_is_an_error() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
        };
        let err = execute(&plan, &inst, &Params::none()).unwrap_err();
        assert_eq!(err, ExecError::UnboundParam(0));
    }

    #[test]
    fn empty_flag_short_circuits() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Or(vec![Pred::EmptyFlag(0), Pred::False]),
        };
        let mut params = Params::with_slots(1);
        params.set_empty(0, true);
        assert_eq!(execute(&plan, &inst, &params).unwrap().len(), 3);
        params.set_empty(0, false);
        assert_eq!(execute(&plan, &inst, &params).unwrap().len(), 0);
    }

    #[test]
    fn hash_joins_match_their_nested_loop_forms() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        let scan_edge = || Box::new(Plan::Scan(edge));
        let scan_mark = || Box::new(Plan::Scan(mark));

        // Inner vs Select{Product} with the same equi-predicate.
        let naive_inner = Plan::Select {
            input: Box::new(Plan::Product(scan_edge(), scan_mark())),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Col(2)),
        };
        let hash_inner = Plan::HashJoin {
            left: scan_edge(),
            right: scan_mark(),
            on: vec![(0, 0)],
            kind: JoinKind::Inner,
        };
        let mut stats = ExecStats::default();
        let expected = execute(&naive_inner, &inst, &Params::none()).unwrap();
        let got = execute_counting(&hash_inner, &inst, &Params::none(), &mut stats).unwrap();
        assert_eq!(expected, got);
        assert_eq!(stats.hash_builds, 1);

        // Semi/Anti vs SemiJoin/AntiJoin.
        for (kind, naive) in [
            (
                JoinKind::Semi,
                Plan::SemiJoin { left: scan_edge(), right: scan_mark(), on: vec![(1, 0)] },
            ),
            (
                JoinKind::Anti,
                Plan::AntiJoin { left: scan_edge(), right: scan_mark(), on: vec![(1, 0)] },
            ),
        ] {
            let hash =
                Plan::HashJoin { left: scan_edge(), right: scan_mark(), on: vec![(1, 0)], kind };
            assert_eq!(
                execute(&naive, &inst, &Params::none()).unwrap(),
                execute(&hash, &inst, &Params::none()).unwrap(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn hash_join_with_empty_on_degenerates_correctly() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        // Empty key: every left row matches iff the right side is non-empty.
        let semi = Plan::HashJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![],
            kind: JoinKind::Semi,
        };
        assert_eq!(execute(&semi, &inst, &Params::none()).unwrap().len(), 3);
        let inner = Plan::HashJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![],
            kind: JoinKind::Inner,
        };
        let product = Plan::Product(Box::new(Plan::Scan(edge)), Box::new(Plan::Scan(mark)));
        assert_eq!(
            execute(&inner, &inst, &Params::none()).unwrap(),
            execute(&product, &inst, &Params::none()).unwrap()
        );
    }

    #[test]
    fn nullary_plans_encode_booleans() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        // "does any edge from 1 exist" as a width-0 projection
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan(edge)),
                pred: Pred::Eq(Scalar::Col(0), Scalar::Const(Value(1))),
            }),
            cols: vec![],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1, "non-empty result encodes true");
    }
}
