//! Plan execution over an [`Instance`] with bound parameters.
//!
//! Execution is a direct recursive interpreter: the per-step relations in
//! the verifier hold a handful of tuples, so hash-join machinery would cost
//! more than it saves (the paper makes the same observation about query
//! optimization over "toy-sized databases").

use crate::instance::Instance;
use crate::plan::{Plan, Pred, Scalar};
use crate::tuple::{Relation, Tuple};
use crate::value::Value;
use std::fmt;

/// Parameter bindings for one execution: positional values plus the
/// "empty input" flags consulted by [`Pred::EmptyFlag`].
#[derive(Clone, Debug, Default)]
pub struct Params {
    values: Vec<Option<Value>>,
    empty_flags: Vec<bool>,
}

impl Params {
    /// No parameters.
    pub fn none() -> Self {
        Params::default()
    }

    /// Build with `n` unbound slots.
    pub fn with_slots(n: usize) -> Self {
        Params { values: vec![None; n], empty_flags: vec![false; n] }
    }

    /// Bind slot `i` to a value (grows the slot vector if needed).
    pub fn bind(&mut self, i: usize, v: Value) {
        if self.values.len() <= i {
            self.values.resize(i + 1, None);
        }
        self.values[i] = Some(v);
    }

    /// Set slot `i`'s empty-input flag.
    pub fn set_empty(&mut self, i: usize, empty: bool) {
        if self.empty_flags.len() <= i {
            self.empty_flags.resize(i + 1, false);
        }
        self.empty_flags[i] = empty;
    }

    fn value(&self, i: usize) -> Result<Value, ExecError> {
        self.values.get(i).copied().flatten().ok_or(ExecError::UnboundParam(i))
    }

    fn empty(&self, i: usize) -> bool {
        self.empty_flags.get(i).copied().unwrap_or(false)
    }
}

/// Runtime execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A referenced parameter slot was never bound.
    UnboundParam(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnboundParam(i) => write!(f, "parameter slot {i} is unbound"),
        }
    }
}

impl std::error::Error for ExecError {}

fn scalar(s: Scalar, row: &[Value], params: &Params) -> Result<Value, ExecError> {
    match s {
        Scalar::Col(i) => Ok(row[i]),
        Scalar::Const(v) => Ok(v),
        Scalar::Param(i) => params.value(i),
    }
}

fn eval_pred(p: &Pred, row: &[Value], params: &Params) -> Result<bool, ExecError> {
    Ok(match p {
        Pred::True => true,
        Pred::False => false,
        Pred::Eq(a, b) => scalar(*a, row, params)? == scalar(*b, row, params)?,
        Pred::Ne(a, b) => scalar(*a, row, params)? != scalar(*b, row, params)?,
        Pred::And(ps) => {
            for q in ps {
                if !eval_pred(q, row, params)? {
                    return Ok(false);
                }
            }
            true
        }
        Pred::Or(ps) => {
            for q in ps {
                if eval_pred(q, row, params)? {
                    return Ok(true);
                }
            }
            false
        }
        Pred::Not(q) => !eval_pred(q, row, params)?,
        Pred::EmptyFlag(i) => params.empty(*i),
    })
}

/// Execute `plan` over `inst` with `params`, producing a relation.
pub fn execute(plan: &Plan, inst: &Instance, params: &Params) -> Result<Relation, ExecError> {
    Ok(match plan {
        Plan::Scan(r) => inst.rel(*r).clone(),
        Plan::Values { width, rows } => {
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let mut vals = Vec::with_capacity(row.len());
                for s in row {
                    vals.push(scalar(*s, &[], params)?);
                }
                out.push(Tuple::from(vals));
            }
            Relation::from_tuples(*width, out)
        }
        Plan::Select { input, pred } => {
            let rel = execute(input, inst, params)?;
            let mut kept = Vec::new();
            for t in rel.iter() {
                if eval_pred(pred, t.values(), params)? {
                    kept.push(t.clone());
                }
            }
            Relation::from_tuples(rel.arity(), kept)
        }
        Plan::Project { input, cols } => {
            let rel = execute(input, inst, params)?;
            let mut out = Vec::with_capacity(rel.len());
            for t in rel.iter() {
                let mut vals = Vec::with_capacity(cols.len());
                for c in cols {
                    vals.push(scalar(*c, t.values(), params)?);
                }
                out.push(Tuple::from(vals));
            }
            Relation::from_tuples(cols.len(), out)
        }
        Plan::Product(l, r) => {
            let lrel = execute(l, inst, params)?;
            let rrel = execute(r, inst, params)?;
            let mut out = Vec::with_capacity(lrel.len() * rrel.len());
            for lt in lrel.iter() {
                for rt in rrel.iter() {
                    let mut vals = Vec::with_capacity(lt.arity() + rt.arity());
                    vals.extend_from_slice(lt.values());
                    vals.extend_from_slice(rt.values());
                    out.push(Tuple::from(vals));
                }
            }
            Relation::from_tuples(lrel.arity() + rrel.arity(), out)
        }
        Plan::Union(l, r) => execute(l, inst, params)?.union(&execute(r, inst, params)?),
        Plan::Difference(l, r) => execute(l, inst, params)?.difference(&execute(r, inst, params)?),
        Plan::SemiJoin { left, right, on } => {
            let lrel = execute(left, inst, params)?;
            let rrel = execute(right, inst, params)?;
            let matches = |lt: &Tuple| {
                rrel.iter().any(|rt| on.iter().all(|&(lc, rc)| lt.get(lc) == rt.get(rc)))
            };
            Relation::from_tuples(
                lrel.arity(),
                lrel.iter().filter(|t| matches(t)).cloned().collect::<Vec<_>>(),
            )
        }
        Plan::AntiJoin { left, right, on } => {
            let lrel = execute(left, inst, params)?;
            let rrel = execute(right, inst, params)?;
            let matches = |lt: &Tuple| {
                rrel.iter().any(|rt| on.iter().all(|&(lc, rc)| lt.get(lc) == rt.get(rc)))
            };
            Relation::from_tuples(
                lrel.arity(),
                lrel.iter().filter(|t| !matches(t)).cloned().collect::<Vec<_>>(),
            )
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelKind, Schema};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.declare("edge", 2, RelKind::Database).unwrap();
        s.declare("mark", 1, RelKind::State).unwrap();
        let s = Arc::new(s);
        let mut inst = Instance::empty(Arc::clone(&s));
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        for (a, b) in [(1, 2), (2, 3), (3, 1)] {
            inst.insert(edge, Tuple::from([Value(a), Value(b)]));
        }
        inst.insert(mark, Tuple::from([Value(2)]));
        (s, inst)
    }

    #[test]
    fn scan_and_select() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Const(Value(2))),
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(2), Value(3)])));
    }

    #[test]
    fn project_reorders_and_injects_consts() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Project {
            input: Box::new(Plan::Scan(edge)),
            cols: vec![Scalar::Col(1), Scalar::Const(Value(9))],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Tuple::from([Value(2), Value(9)])));
    }

    #[test]
    fn semijoin_keeps_matching_rows() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        // edges whose source is marked
        let plan = Plan::SemiJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![(0, 0)],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(2), Value(3)])));
    }

    #[test]
    fn antijoin_is_complement_of_semijoin() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let mark = s.lookup("mark").unwrap();
        let anti = Plan::AntiJoin {
            left: Box::new(Plan::Scan(edge)),
            right: Box::new(Plan::Scan(mark)),
            on: vec![(0, 0)],
        };
        let out = execute(&anti, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn params_bind_into_predicates_and_values() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
        };
        let mut params = Params::with_slots(1);
        params.bind(0, Value(3));
        let out = execute(&plan, &inst, &params).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::from([Value(3), Value(1)])));
    }

    #[test]
    fn unbound_param_is_an_error() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Eq(Scalar::Col(0), Scalar::Param(0)),
        };
        let err = execute(&plan, &inst, &Params::none()).unwrap_err();
        assert_eq!(err, ExecError::UnboundParam(0));
    }

    #[test]
    fn empty_flag_short_circuits() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        let plan = Plan::Select {
            input: Box::new(Plan::Scan(edge)),
            pred: Pred::Or(vec![Pred::EmptyFlag(0), Pred::False]),
        };
        let mut params = Params::with_slots(1);
        params.set_empty(0, true);
        assert_eq!(execute(&plan, &inst, &params).unwrap().len(), 3);
        params.set_empty(0, false);
        assert_eq!(execute(&plan, &inst, &params).unwrap().len(), 0);
    }

    #[test]
    fn nullary_plans_encode_booleans() {
        let (s, inst) = setup();
        let edge = s.lookup("edge").unwrap();
        // "does any edge from 1 exist" as a width-0 projection
        let plan = Plan::Project {
            input: Box::new(Plan::Select {
                input: Box::new(Plan::Scan(edge)),
                pred: Pred::Eq(Scalar::Col(0), Scalar::Const(Value(1))),
            }),
            cols: vec![],
        };
        let out = execute(&plan, &inst, &Params::none()).unwrap();
        assert_eq!(out.len(), 1, "non-empty result encodes true");
    }
}
