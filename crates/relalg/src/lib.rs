//! `wave-relalg`: the in-memory relational engine substrate of the wave
//! verifier.
//!
//! The SIGMOD 2005 wave implementation stored pseudoconfigurations in the
//! HSQLDB main-memory DBMS and evaluated the FO rule bodies as parameterized
//! SQL prepared statements. This crate is the from-scratch Rust equivalent:
//!
//! * interned [`value::Value`]s and canonical [`tuple::Relation`]s,
//! * [`schema::Schema`]s distinguishing database/state/input/action
//!   relations,
//! * [`instance::Instance`]s (the per-step working database),
//! * [`engine`]: a [`engine::MemoryEngine`] (the HSQLDB stand-in) and a
//!   deliberately disk-backed [`engine::DiskEngine`] used only to reproduce
//!   the paper's DBMS-selection microbenchmark,
//! * [`plan`]/[`exec`]/[`prepared`]: relational-algebra plans with parameter
//!   slots, an interpreter, and reusable prepared queries (the JDBC
//!   prepared-statement equivalent),
//! * [`stats`]/[`optimize`]: cardinality statistics and the planner pass
//!   that pushes selections down and lowers joins to hash operators when
//!   the build side is large enough to pay for the table.

pub mod engine;
pub mod exec;
pub mod instance;
pub mod optimize;
pub mod plan;
pub mod prepared;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;

pub use engine::{DiskEngine, MemoryEngine, StorageEngine};
pub use exec::{execute, execute_counting, ExecError, ExecStats, Params};
pub use instance::Instance;
pub use optimize::{optimize, HASH_BUILD_THRESHOLD};
pub use plan::{JoinKind, Plan, PlanError, PlanReads, Pred, Scalar};
pub use prepared::PreparedQuery;
pub use schema::{RelDecl, RelId, RelKind, Schema};
pub use stats::InstanceStats;
pub use tuple::{Relation, Tuple, TupleInterner};
pub use value::{SymbolTable, Value, ValueKind};
