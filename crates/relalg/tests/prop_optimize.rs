//! Optimizer oracle: random plans over random instances must compute
//! exactly the same relation before and after the cardinality-guided
//! rewrite (push-down, join reordering, hash lowering). `Relation` is
//! canonical (sorted, deduplicated), so equality here is byte-equality —
//! the same guarantee the `--naive-joins` ablation gate relies on.

use proptest::prelude::*;
use std::sync::Arc;
use wave_relalg::{
    execute, optimize, Instance, InstanceStats, Params, Plan, Pred, RelKind, Relation, Scalar,
    Schema, Tuple, Value,
};

fn tuples(arity: usize, max_val: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..max_val, arity), 0..14)
}

fn rel_of(arity: usize, raw: &[Vec<u32>]) -> Relation {
    Relation::from_tuples(
        arity,
        raw.iter().map(|t| Tuple::from(t.iter().map(|&v| Value(v)).collect::<Vec<_>>())),
    )
}

/// Tiny deterministic generator so random plan shapes don't depend on
/// combinators the vendored proptest stand-in lacks.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random scalar over a plan of the given width (params 0..2 are
/// always bound by the harness).
fn scalar(rng: &mut Lcg, width: usize) -> Scalar {
    match rng.below(3) {
        0 if width > 0 => Scalar::Col(rng.below(width as u64) as usize),
        1 => Scalar::Param(rng.below(2) as usize),
        _ => Scalar::Const(Value(rng.below(6) as u32)),
    }
}

/// A random conjunction of comparisons (the fragment the compiler
/// emits, which is also the fragment the push-down classifier handles).
fn pred(rng: &mut Lcg, width: usize) -> Pred {
    let conjunct = |rng: &mut Lcg| {
        let (a, b) = (scalar(rng, width), scalar(rng, width));
        if rng.below(2) == 0 {
            Pred::Eq(a, b)
        } else {
            Pred::Ne(a, b)
        }
    };
    match rng.below(3) {
        0 => conjunct(rng),
        1 => Pred::And(vec![conjunct(rng), conjunct(rng)]),
        _ => Pred::And(vec![conjunct(rng), conjunct(rng), conjunct(rng)]),
    }
}

/// Build a random valid plan over the three test relations, returning
/// the plan and its width. Depth-bounded so shrunk cases stay readable.
fn random_plan(rng: &mut Lcg, schema: &Schema, depth: u32) -> (Plan, usize) {
    let rels = ["r0", "r1", "r2"];
    if depth == 0 || rng.below(3) == 0 {
        let name = rels[rng.below(3) as usize];
        let id = schema.lookup(name).unwrap();
        return (Plan::Scan(id), schema.arity(id));
    }
    let (left, lw) = random_plan(rng, schema, depth - 1);
    match rng.below(5) {
        0 => {
            let p = pred(rng, lw);
            (Plan::Select { input: Box::new(left), pred: p }, lw)
        }
        1 => {
            let (right, rw) = random_plan(rng, schema, depth - 1);
            (Plan::Product(Box::new(left), Box::new(right)), lw + rw)
        }
        2 => {
            let (right, rw) = random_plan(rng, schema, depth - 1);
            let on = if lw == 0 || rw == 0 {
                vec![]
            } else {
                vec![(rng.below(lw as u64) as usize, rng.below(rw as u64) as usize)]
            };
            if rng.below(2) == 0 {
                (Plan::SemiJoin { left: Box::new(left), right: Box::new(right), on }, lw)
            } else {
                (Plan::AntiJoin { left: Box::new(left), right: Box::new(right), on }, lw)
            }
        }
        3 if lw > 0 => {
            let cols = (0..=rng.below(lw as u64) as usize)
                .map(|_| {
                    if rng.below(4) == 0 {
                        Scalar::Const(Value(rng.below(6) as u32))
                    } else {
                        Scalar::Col(rng.below(lw as u64) as usize)
                    }
                })
                .collect::<Vec<_>>();
            let w = cols.len();
            (Plan::Project { input: Box::new(left), cols }, w)
        }
        _ => {
            // same-width set operation: pair the plan with itself under a
            // select so union/difference inputs always agree on width
            let p = pred(rng, lw);
            let right = Plan::Select { input: Box::new(left.clone()), pred: p };
            if rng.below(2) == 0 {
                (Plan::Union(Box::new(left), Box::new(right)), lw)
            } else {
                (Plan::Difference(Box::new(left), Box::new(right)), lw)
            }
        }
    }
}

fn setup(a: &[Vec<u32>], b: &[Vec<u32>], c: &[Vec<u32>]) -> (Arc<Schema>, Instance) {
    let mut schema = Schema::new();
    schema.declare("r0", 2, RelKind::Database).unwrap();
    schema.declare("r1", 2, RelKind::Database).unwrap();
    schema.declare("r2", 1, RelKind::Database).unwrap();
    let schema = Arc::new(schema);
    let mut inst = Instance::empty(Arc::clone(&schema));
    inst.set_rel(schema.lookup("r0").unwrap(), rel_of(2, a));
    inst.set_rel(schema.lookup("r1").unwrap(), rel_of(2, b));
    inst.set_rel(schema.lookup("r2").unwrap(), rel_of(1, c));
    (schema, inst)
}

proptest! {
    /// The optimizer is an identity on the computed relation: for any
    /// plan and instance, the rewritten plan validates at the same width
    /// and executes to the same canonical relation.
    #[test]
    fn optimized_plans_compute_identical_relations(
        a in tuples(2, 6),
        b in tuples(2, 6),
        c in tuples(1, 6),
        seed in 0u64..1u64 << 48,
        p0 in 0u32..6,
        p1 in 0u32..6,
    ) {
        let (schema, inst) = setup(&a, &b, &c);
        let mut rng = Lcg(seed | 1);
        let (plan, width) = random_plan(&mut rng, &schema, 3);
        prop_assert_eq!(plan.validate(&schema), Ok(width));

        let stats = InstanceStats::collect(&inst);
        let optimized = optimize(&plan, &schema, &stats);
        prop_assert_eq!(optimized.validate(&schema), Ok(width), "rewrite must preserve width");

        let mut params = Params::with_slots(2);
        params.bind(0, Value(p0));
        params.bind(1, Value(p1));
        let naive = execute(&plan, &inst, &params).unwrap();
        let fast = execute(&optimized, &inst, &params).unwrap();
        prop_assert_eq!(naive, fast);
    }

    /// Stats collected from a *different* instance still yield a correct
    /// (if badly costed) plan: estimates steer, they never gate soundness.
    #[test]
    fn stale_statistics_never_change_results(
        a in tuples(2, 6),
        b in tuples(2, 6),
        c in tuples(1, 6),
        seed in 0u64..1u64 << 48,
    ) {
        let (schema, inst) = setup(&a, &b, &c);
        // stats from an empty instance: every estimate is minimal, so
        // hash lowering decisions are maximally wrong for `inst`
        let stale = InstanceStats::collect(&Instance::empty(Arc::clone(&schema)));
        let mut rng = Lcg(seed | 1);
        let (plan, _) = random_plan(&mut rng, &schema, 3);
        let optimized = optimize(&plan, &schema, &stale);
        let mut params = Params::with_slots(2);
        params.bind(0, Value(0));
        params.bind(1, Value(3));
        prop_assert_eq!(
            execute(&plan, &inst, &params).unwrap(),
            execute(&optimized, &inst, &params).unwrap()
        );
    }
}
