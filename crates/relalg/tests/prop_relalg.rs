//! Property-based tests for the relational substrate: canonical-form
//! invariants of `Relation`, algebraic laws of the set operations, and
//! plan-executor correctness against a straightforward model.

use proptest::prelude::*;
use std::sync::Arc;
use wave_relalg::{
    execute, Instance, Params, Plan, Pred, RelKind, Relation, Scalar, Schema, Tuple, Value,
};

fn tuples(arity: usize, max_val: u32) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..max_val, arity), 0..12)
}

fn rel_of(arity: usize, raw: &[Vec<u32>]) -> Relation {
    Relation::from_tuples(
        arity,
        raw.iter().map(|t| Tuple::from(t.iter().map(|&v| Value(v)).collect::<Vec<_>>())),
    )
}

proptest! {
    /// Canonical form: construction order never affects equality.
    #[test]
    fn relation_equality_is_order_independent(mut raw in tuples(2, 6)) {
        let a = rel_of(2, &raw);
        raw.reverse();
        let b = rel_of(2, &raw);
        prop_assert_eq!(a, b);
    }

    /// Union is commutative and difference is its partial inverse.
    #[test]
    fn union_difference_laws(xs in tuples(2, 5), ys in tuples(2, 5)) {
        let a = rel_of(2, &xs);
        let b = rel_of(2, &ys);
        prop_assert_eq!(a.union(&b), b.union(&a));
        // a \ b keeps exactly the a-tuples not in b
        let d = a.difference(&b);
        for t in d.iter() {
            prop_assert!(a.contains(t) && !b.contains(t));
        }
        // |a ∪ b| = |a\b| + |b\a| + |a ∩ b|, with a ∩ b = a \ (a\b)
        let u = a.union(&b);
        let inter = a.difference(&a.difference(&b));
        prop_assert_eq!(
            u.len(),
            a.difference(&b).len() + b.difference(&a).len() + inter.len()
        );
    }

    /// Select distributes: selecting twice equals selecting a conjunction.
    #[test]
    fn select_conjunction(raw in tuples(2, 6), c1 in 0u32..6, c2 in 0u32..6) {
        let mut schema = Schema::new();
        schema.declare("r", 2, RelKind::Database).unwrap();
        let schema = Arc::new(schema);
        let r = schema.lookup("r").unwrap();
        let mut inst = Instance::empty(Arc::clone(&schema));
        inst.set_rel(r, rel_of(2, &raw));
        let p1 = Pred::Eq(Scalar::Col(0), Scalar::Const(Value(c1)));
        let p2 = Pred::Ne(Scalar::Col(1), Scalar::Const(Value(c2)));
        let nested = Plan::Select {
            input: Box::new(Plan::Select { input: Box::new(Plan::Scan(r)), pred: p1.clone() }),
            pred: p2.clone(),
        };
        let conj = Plan::Select {
            input: Box::new(Plan::Scan(r)),
            pred: Pred::And(vec![p1, p2]),
        };
        let a = execute(&nested, &inst, &Params::none()).unwrap();
        let b = execute(&conj, &inst, &Params::none()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Semi-join plus anti-join partition the left side.
    #[test]
    fn semi_anti_partition(xs in tuples(2, 5), ys in tuples(1, 5)) {
        let mut schema = Schema::new();
        schema.declare("l", 2, RelKind::Database).unwrap();
        schema.declare("m", 1, RelKind::Database).unwrap();
        let schema = Arc::new(schema);
        let l = schema.lookup("l").unwrap();
        let m = schema.lookup("m").unwrap();
        let mut inst = Instance::empty(Arc::clone(&schema));
        inst.set_rel(l, rel_of(2, &xs));
        inst.set_rel(m, rel_of(1, &ys));
        let semi = Plan::SemiJoin {
            left: Box::new(Plan::Scan(l)),
            right: Box::new(Plan::Scan(m)),
            on: vec![(0, 0)],
        };
        let anti = Plan::AntiJoin {
            left: Box::new(Plan::Scan(l)),
            right: Box::new(Plan::Scan(m)),
            on: vec![(0, 0)],
        };
        let s = execute(&semi, &inst, &Params::none()).unwrap();
        let a = execute(&anti, &inst, &Params::none()).unwrap();
        prop_assert_eq!(s.len() + a.len(), inst.rel(l).len());
        prop_assert!(s.iter().all(|t| !a.contains(t)));
        prop_assert_eq!(s.union(&a), inst.rel(l).clone());
    }

    /// Projection then projection composes.
    #[test]
    fn projection_composes(raw in tuples(3, 6)) {
        let mut schema = Schema::new();
        schema.declare("r", 3, RelKind::Database).unwrap();
        let schema = Arc::new(schema);
        let r = schema.lookup("r").unwrap();
        let mut inst = Instance::empty(Arc::clone(&schema));
        inst.set_rel(r, rel_of(3, &raw));
        let two_step = Plan::Project {
            input: Box::new(Plan::Project {
                input: Box::new(Plan::Scan(r)),
                cols: vec![Scalar::Col(2), Scalar::Col(0)],
            }),
            cols: vec![Scalar::Col(1)],
        };
        let one_step = Plan::Project {
            input: Box::new(Plan::Scan(r)),
            cols: vec![Scalar::Col(0)],
        };
        prop_assert_eq!(
            execute(&two_step, &inst, &Params::none()).unwrap(),
            execute(&one_step, &inst, &Params::none()).unwrap()
        );
    }
}
