//! Proptest oracle for the tiered out-of-core visited set (ISSUE 6).
//!
//! The flat in-memory [`VisitTable`] is the reference semantics for the
//! NDFS visited set: per-phase mark bits on packed `(config, automaton
//! state)` keys, `clear` between cores, a historic distinct-count
//! maximum across clears. `wave-store`'s tiered backend (Bloom front →
//! clock hot tier → sorted spill segments) must be observationally
//! identical on every interleaving of `mark` / `is_marked` /
//! `clear_visits` — at a generous budget where nothing spills *and* at a
//! zero budget where eviction pushes almost everything through the
//! spill path on every insert.
//!
//! A second property drives the checkpoint invariant: at a core
//! boundary (visited set empty by construction), a `save_state` /
//! fresh-store / `load_state` round trip must preserve the intern
//! arena — same configurations re-intern to the same ids — and the
//! restored store must keep agreeing with the oracle afterwards.

use proptest::prelude::*;
use std::sync::Arc;
use wave_core::{
    ConfigId, InternedStore, Phase, PseudoConfig, StateStore, TierParams, TieredStore, VisitTable,
};
use wave_relalg::{RelId, Tuple, Value};
use wave_spec::PageId;
use wave_store::{ByteReader, ByteWriter};

/// One visited-set operation over a small key universe.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `mark(key(cfg, auto), phase)` — both sides must agree on the
    /// already-marked return.
    Mark { cfg: u8, auto: u8, candy: bool },
    /// `is_marked(key(cfg, auto), phase)`.
    Probe { cfg: u8, auto: u8, candy: bool },
    /// Core boundary: reset the visited set, keep the historic max.
    Clear,
}

fn phase(candy: bool) -> Phase {
    if candy {
        Phase::Candy
    } else {
        Phase::Stick
    }
}

/// A deliberately small universe (6 configs × 4 automaton states) so
/// random sequences revisit keys often — the interesting transitions
/// are re-marks, cross-phase probes, and eviction of a key that is
/// marked again later.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..4, prop_oneof![Just(false), Just(true)])
            .prop_map(|(cfg, auto, candy)| Op::Mark { cfg, auto, candy }),
        (0u8..6, 0u8..4, prop_oneof![Just(false), Just(true)])
            .prop_map(|(cfg, auto, candy)| Op::Probe { cfg, auto, candy }),
        Just(Op::Clear),
    ]
}

fn key(cfg: u8, auto: u8) -> u64 {
    VisitTable::key(ConfigId(u32::from(cfg)), auto as usize)
}

/// A distinct pseudo-configuration per universe slot (used by the
/// checkpoint property, which exercises real interning).
fn config(slot: u8) -> PseudoConfig {
    let mut c = PseudoConfig::initial(PageId(0));
    c.state = Arc::new(vec![(RelId(0), Tuple::from([Value(u32::from(slot))]))]);
    c
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Any op sequence observes the same marks through the tiered store
    /// as through the flat table, at both budget extremes, and the
    /// historic distinct-count maximum matches at the end.
    #[test]
    fn tiered_visits_match_the_flat_table(
        ops in prop::collection::vec(op_strategy(), 160),
    ) {
        for mem_bytes in [0u64, 1 << 20] {
            let mut oracle = VisitTable::new();
            let mut tiered =
                TieredStore::new(&TierParams { mem_bytes, spill_dir: None });
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    Op::Mark { cfg, auto, candy } => {
                        let k = key(cfg, auto);
                        prop_assert_eq!(
                            oracle.mark(k, phase(candy)),
                            tiered.mark(&k, phase(candy)),
                            "op {i}: mark({cfg},{auto},{candy:?}) diverged at {mem_bytes} bytes"
                        );
                    }
                    Op::Probe { cfg, auto, candy } => {
                        let k = key(cfg, auto);
                        prop_assert_eq!(
                            oracle.is_marked(k, phase(candy)),
                            tiered.is_marked(&k, phase(candy)),
                            "op {i}: is_marked({cfg},{auto},{candy:?}) diverged at {mem_bytes} bytes"
                        );
                    }
                    Op::Clear => {
                        oracle.clear();
                        tiered.clear_visits();
                    }
                }
            }
            prop_assert_eq!(
                oracle.max_len(),
                tiered.max_visited(),
                "historic distinct maximum diverged at {mem_bytes} bytes"
            );
        }
    }

    /// Checkpoint round trip at a core boundary: marks agree before,
    /// the arena survives serialization (same ids for the same
    /// configurations), and marks agree after the restore.
    #[test]
    fn agreement_survives_a_checkpoint_round_trip(
        pre in prop::collection::vec(op_strategy(), 80),
        post in prop::collection::vec(op_strategy(), 80),
    ) {
        let params = TierParams { mem_bytes: 0, spill_dir: None };
        let mut oracle = InternedStore::new();
        let mut tiered = TieredStore::new(&params);

        // intern the whole universe up front; ids must agree pairwise
        let mut keys = Vec::new();
        for slot in 0u8..6 {
            let (a, _) = oracle.intern(&config(slot));
            let (b, _) = tiered.intern(&config(slot));
            prop_assert_eq!(a, b, "slot {slot} interned to different ids");
            keys.push(a);
        }

        let run = |ops: &[Op],
                       oracle: &mut InternedStore,
                       tiered: &mut TieredStore|
         -> Result<(), String> {
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    Op::Mark { cfg, auto, candy } => {
                        let k = oracle.pair(&keys[cfg as usize], auto as usize);
                        prop_assert_eq!(
                            oracle.mark(&k, phase(candy)),
                            tiered.mark(&k, phase(candy)),
                            "op {i}: mark diverged"
                        );
                    }
                    Op::Probe { cfg, auto, candy } => {
                        let k = oracle.pair(&keys[cfg as usize], auto as usize);
                        prop_assert_eq!(
                            oracle.is_marked(&k, phase(candy)),
                            tiered.is_marked(&k, phase(candy)),
                            "op {i}: is_marked diverged"
                        );
                    }
                    Op::Clear => {
                        oracle.clear_visits();
                        tiered.clear_visits();
                    }
                }
            }
            Ok(())
        };

        run(&pre, &mut oracle, &mut tiered)?;

        // core boundary: visited sets empty on both sides by construction
        oracle.clear_visits();
        tiered.clear_visits();

        // kill + resume: serialize the arena, rebuild from scratch
        let mut w = ByteWriter::new();
        tiered.save_state(&mut w);
        let blob = w.into_inner();
        let mut tiered = TieredStore::new(&params);
        prop_assert!(
            tiered.load_state(&mut ByteReader::new(&blob)),
            "checkpoint payload must decode"
        );

        // the restored arena yields the same ids for the same configs
        for (slot, expected) in keys.iter().enumerate() {
            let (id, _) = tiered.intern(&config(slot as u8));
            prop_assert_eq!(id, *expected, "slot {slot} re-interned differently after restore");
        }

        run(&post, &mut oracle, &mut tiered)?;
    }
}
