//! Property-based validation of the wave-flow slice on random miniature
//! specifications *seeded with statically dead code*.
//!
//! The generated family extends the propositional-navigation family of
//! `prop_oracle.rs` with a state layer built to exercise every slice
//! transformation: a live `log` insert, a value-set-refuted `ghost`
//! insert (so `ghost` is always empty), a dead `delete log` guarded by
//! `ghost` (unlocking the monotone fast path when it is the only
//! delete), an optionally live delete, and target edges guarded by
//! `ghost` reads (flow-refuted, possibly making whole pages
//! unreachable).
//!
//! Two invariants per case:
//!
//! * **byte-identity**: the sliced and unsliced searches agree on the
//!   verdict, the deterministic search counters, and the rendered
//!   counterexample — the slice is runtime-inert (DESIGN.md §14);
//! * **oracle agreement**: the sliced verdict matches the explicit-state
//!   `wave-naive` oracle, so the slice is not just self-consistent but
//!   consistent with ground truth.

use proptest::prelude::*;
use wave_core::{Verdict, Verifier, VerifyOptions};
use wave_naive::{NaiveOptions, NaiveVerdict, NaiveVerifier};
use wave_spec::parse_spec;

const PAGES: [&str; 3] = ["A", "B", "C"];

/// Per-destination target guard in the generated page. `Ghost` reads an
/// always-empty relation — the edge exists syntactically but the flow
/// fixpoint refutes it.
#[derive(Clone, Copy, Debug)]
enum Guard {
    None,
    True,
    Go,
    Stop,
    Ghost,
}

impl Guard {
    fn render(self) -> Option<&'static str> {
        match self {
            Guard::None => None,
            Guard::True => Some("true"),
            Guard::Go => Some("b(\"go\")"),
            Guard::Stop => Some("b(\"stop\")"),
            Guard::Ghost => Some("ghost(\"x\")"),
        }
    }
}

fn guard_strategy() -> impl Strategy<Value = Guard> {
    prop_oneof![
        Just(Guard::None),
        Just(Guard::True),
        Just(Guard::Go),
        Just(Guard::Stop),
        Just(Guard::Ghost),
    ]
}

/// Which state rules a generated page carries.
#[derive(Clone, Copy, Debug)]
struct StateRules {
    /// `insert log(x) <- b(x)` — live.
    insert_log: bool,
    /// `insert ghost(x) <- b(x) & x = "warp"` — dead: the option rules
    /// only ever offer "go"/"stop", so the value set refutes the guard.
    insert_ghost: bool,
    /// `delete log(x) <- ghost(x) & b(x)` — dead: `ghost` is always
    /// empty. With no live delete on the page, inserts take the
    /// monotone fast path.
    dead_delete: bool,
    /// `delete log(x) <- b(x) & b("stop")` — live, defeating the fast
    /// path on this page.
    live_delete: bool,
}

fn state_rules_strategy() -> impl Strategy<Value = StateRules> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(insert_log, insert_ghost, dead_delete, live_delete)| StateRules {
            insert_log,
            insert_ghost,
            dead_delete,
            live_delete,
        },
    )
}

/// Render a spec with `n` pages, the given target matrix
/// (`targets[src][dst]`), and per-page state rules. Every page keeps an
/// unconditional self-loop so runs are total.
fn render_spec(n: usize, targets: &[Vec<Guard>], rules: &[StateRules]) -> String {
    let mut src =
        String::from("spec gen {\n  state { log(v); ghost(v); }\n  inputs { b(x); }\n  home A;\n");
    for (i, page) in PAGES.iter().take(n).enumerate() {
        src.push_str(&format!("  page {page} {{\n    inputs {{ b }}\n"));
        src.push_str("    options b(x) <- x = \"go\" | x = \"stop\";\n");
        let r = rules[i];
        if r.insert_log {
            src.push_str("    insert log(x) <- b(x);\n");
        }
        if r.insert_ghost {
            src.push_str("    insert ghost(x) <- b(x) & x = \"warp\";\n");
        }
        if r.dead_delete {
            src.push_str("    delete log(x) <- ghost(x) & b(x);\n");
        }
        if r.live_delete {
            src.push_str("    delete log(x) <- b(x) & b(\"stop\");\n");
        }
        for (j, guard) in targets[i].iter().take(n).enumerate() {
            if i == j {
                continue;
            }
            if let Some(g) = guard.render() {
                src.push_str(&format!("    target {} <- {g};\n", PAGES[j]));
            }
        }
        src.push_str(&format!("    target {page} <- true;\n  }}\n"));
    }
    src.push_str("}\n");
    src
}

/// Propositional properties (oracle-comparable) plus state-reading ones
/// (byte-identity only on paper; the oracle handles them fine on this
/// family since all state values are spec constants).
fn render_property(kind: usize, a: usize, b: usize, n: usize) -> String {
    let pa = PAGES[a % n];
    let pb = PAGES[b % n];
    match kind % 7 {
        0 => format!("F @{pa}"),
        1 => format!("G !@{pb}"),
        2 => format!("G (@{pa} -> X (@{pa} | @{pb}))"),
        3 => format!("G (@{pa} -> F @{pb})"),
        4 => format!("(!@{pb}) U @{pa}"),
        5 => "G !log(\"stop\")".to_string(),
        _ => "G !ghost(\"warp\")".to_string(),
    }
}

/// Everything byte-identity compares: verdict shape, deterministic
/// counters, rendered counterexample — and the slice counters, which
/// must be zero on the ablation side.
fn observe(spec_src: &str, property: &str, slice: bool) -> (String, [u64; 5], [u64; 3]) {
    let spec = parse_spec(spec_src).expect("generated spec parses");
    let verifier = Verifier::with_options(spec, VerifyOptions { slice, ..Default::default() })
        .expect("generated spec compiles");
    let v = verifier.check_str(property).expect("check runs");
    let rendered = match &v.verdict {
        Verdict::Violated(ce) => format!("violated:{}", verifier.render_counterexample(ce)),
        other => format!("{other:?}"),
    };
    (
        rendered,
        [
            v.stats.configs,
            v.stats.cores,
            v.stats.assignments,
            v.stats.max_trie as u64,
            v.stats.max_run_len as u64,
        ],
        [
            v.stats.profile.slice_rules_removed,
            v.stats.profile.slice_relations_removed,
            v.stats.profile.flow_dead_rules,
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn sliced_search_is_inert_and_matches_naive_oracle(
        n in 2usize..=3,
        targets in prop::collection::vec(
            prop::collection::vec(guard_strategy(), 3),
            3,
        ),
        rules in prop::collection::vec(state_rules_strategy(), 3),
        kind in 0usize..7,
        a in 0usize..3,
        b in 0usize..3,
    ) {
        let spec_src = render_spec(n, &targets, &rules);
        let property = render_property(kind, a, b, n);

        let (sliced, counters, removed) = observe(&spec_src, &property, true);
        let (unsliced, base_counters, base_removed) = observe(&spec_src, &property, false);

        prop_assert_eq!(
            &sliced, &unsliced,
            "slice changed the observable result on {} / {}", spec_src, property
        );
        prop_assert_eq!(
            counters, base_counters,
            "slice changed a deterministic counter on {} / {}", spec_src, property
        );
        prop_assert_eq!(
            base_removed, [0, 0, 0],
            "the ablation must not slice: {} / {}", spec_src, property
        );
        // any generated ghost writer is dead, and any ghost-guarded
        // edge or delete is then refuted — the slice must notice
        let ghost_written = rules.iter().take(n).any(|r| r.insert_ghost);
        let ghost_read = rules.iter().take(n).any(|r| r.dead_delete)
            || targets.iter().take(n).enumerate().any(|(i, row)| {
                row.iter().take(n).enumerate().any(|(j, g)| i != j && matches!(g, Guard::Ghost))
            });
        if ghost_written || ghost_read {
            prop_assert!(
                removed[2] > 0,
                "dead code generated but none reported on {}", spec_src
            );
        }

        // ground truth: the explicit-state oracle agrees with the
        // sliced verdict (every state value is a spec constant, so one
        // fresh value suffices)
        let naive = NaiveVerifier::new(
            parse_spec(&spec_src).unwrap(),
            NaiveOptions { fresh_values: 1, ..Default::default() },
        )
        .expect("oracle compiles");
        let (oracle, _) = naive.check_str(&property).expect("oracle runs");
        let violated = sliced.starts_with("violated:");
        match (violated, &oracle) {
            (false, NaiveVerdict::HoldsBounded) | (true, NaiveVerdict::Violated) => {}
            (_, NaiveVerdict::Exhausted | NaiveVerdict::Explosion { .. }) => {}
            (_, oracle) => prop_assert!(
                false,
                "verdict mismatch on {spec_src} / {property}: sliced={sliced} oracle={oracle:?}"
            ),
        }
    }
}
