//! Property-based tests for the verifier's data structures: the visited
//! trie behaves like a reference set, pseudoconfiguration encoding is
//! injective on canonical forms, and bitmap subset enumeration is exact.

use proptest::prelude::*;
use std::collections::HashSet;
use wave_core::{Phase, Universe, VisitTrie};
use wave_relalg::{RelId, Tuple, Value};

proptest! {
    /// The trie agrees with a HashSet model under arbitrary key sequences.
    #[test]
    fn trie_matches_reference_set(
        ops in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), any::<bool>()),
            0..64,
        )
    ) {
        let mut trie = VisitTrie::new();
        let mut model: HashSet<(Vec<u8>, bool)> = HashSet::new();
        for (key, candy) in &ops {
            let phase = if *candy { Phase::Candy } else { Phase::Stick };
            let was = trie.mark(key, phase);
            let model_was = !model.insert((key.clone(), *candy));
            prop_assert_eq!(was, model_was);
        }
        // membership queries agree afterwards
        for (key, candy) in &ops {
            let phase = if *candy { Phase::Candy } else { Phase::Stick };
            prop_assert!(trie.is_marked(key, phase));
        }
        let keys: HashSet<&Vec<u8>> = ops.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(trie.len(), keys.len());
    }

    /// Subset enumeration visits exactly 2^n distinct subsets.
    #[test]
    fn subsets_are_exact(n in 0usize..8) {
        let candidates: Vec<(RelId, Tuple)> = (0..n)
            .map(|i| (RelId(0), Tuple::from([Value(i as u32)])))
            .collect();
        let u = Universe { candidates };
        let subsets: Vec<_> = u.subsets().collect();
        prop_assert_eq!(subsets.len() as u64, u.subset_count());
        let distinct: HashSet<_> = subsets.iter().cloned().collect();
        prop_assert_eq!(distinct.len(), subsets.len());
        // every subset is a subset of the candidates
        for s in &subsets {
            for f in s {
                prop_assert!(u.candidates.contains(f));
            }
        }
    }

    /// Bitmap decode is the inverse of the subset's index.
    #[test]
    fn decode_round_trips(n in 1usize..8, bitmap in 0u64..256) {
        let candidates: Vec<(RelId, Tuple)> = (0..n)
            .map(|i| (RelId(0), Tuple::from([Value(i as u32)])))
            .collect();
        let u = Universe { candidates };
        let bitmap = bitmap % u.subset_count();
        let facts = u.decode(bitmap);
        // reconstruct the bitmap from the facts
        let mut rebuilt = 0u64;
        for (i, c) in u.candidates.iter().enumerate() {
            if facts.contains(c) {
                rebuilt |= 1 << i;
            }
        }
        prop_assert_eq!(rebuilt, bitmap);
    }
}
