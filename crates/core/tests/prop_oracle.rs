//! Cross-validation of the interned pseudorun search against the
//! explicit-state `wave-naive` oracle on random miniature specifications.
//!
//! The generated family is propositional navigation: pages whose targets
//! are guarded by input constants only, no database relations. On this
//! class every pseudorun is realizable as a genuine run over the spec
//! constants, so the pseudorun verdict and the bounded explicit-state
//! verdict must coincide exactly.
//!
//! Two invariants per case:
//!
//! * the interned store and the byte-key ablation store produce the same
//!   verdict and, on violations, byte-identical counterexample lassos
//!   (hash-consing is semantics-neutral),
//! * the interned verdict agrees with the `wave-naive` oracle
//!   (`Holds` ↔ `HoldsBounded`, `Violated` ↔ `Violated`).

use proptest::prelude::*;
use wave_core::{StateStoreKind, Verdict, Verifier, VerifyOptions};
use wave_naive::{NaiveOptions, NaiveVerdict, NaiveVerifier};
use wave_spec::parse_spec;

const PAGES: [&str; 3] = ["A", "B", "C"];

/// Per-destination target guard in the generated page.
#[derive(Clone, Copy, Debug)]
enum Guard {
    None,
    True,
    Go,
    Stop,
}

impl Guard {
    fn render(self) -> Option<&'static str> {
        match self {
            Guard::None => None,
            Guard::True => Some("true"),
            Guard::Go => Some("b(\"go\")"),
            Guard::Stop => Some("b(\"stop\")"),
        }
    }
}

fn guard_strategy() -> impl Strategy<Value = Guard> {
    prop_oneof![Just(Guard::None), Just(Guard::True), Just(Guard::Go), Just(Guard::Stop),]
}

/// Render a spec with `n` pages and the given target matrix
/// (`targets[src][dst]`). Every page keeps a self-loop fallback so no
/// page is a dead end.
fn render_spec(n: usize, targets: &[Vec<Guard>]) -> String {
    let mut src = String::from("spec gen {\n  inputs { b(x); }\n  home A;\n");
    for (i, page) in PAGES.iter().take(n).enumerate() {
        src.push_str(&format!("  page {page} {{\n"));
        src.push_str("    inputs { b }\n");
        src.push_str("    options b(x) <- x = \"go\" | x = \"stop\";\n");
        let mut any = false;
        for (j, guard) in targets[i].iter().take(n).enumerate() {
            if i == j {
                continue; // the self-loop is appended last, unconditionally
            }
            if let Some(g) = guard.render() {
                src.push_str(&format!("    target {} <- {g};\n", PAGES[j]));
                any = true;
            }
        }
        // fallback: stay on the page (guards may otherwise disable every
        // move and the generated family should have total runs)
        let self_guard = targets[i][i].render().unwrap_or("true");
        src.push_str(&format!("    target {page} <- {self_guard};\n"));
        let _ = any;
        src.push_str("  }\n");
    }
    src.push_str("}\n");
    src
}

/// A small pool of properties over the page propositions.
fn render_property(kind: usize, a: usize, b: usize, n: usize) -> String {
    let pa = PAGES[a % n];
    let pb = PAGES[b % n];
    match kind % 5 {
        0 => format!("F @{pa}"),
        1 => format!("G !@{pb}"),
        2 => format!("G (@{pa} -> X (@{pa} | @{pb}))"),
        3 => format!("G (@{pa} -> F @{pb})"),
        _ => format!("(!@{pb}) U @{pa}"),
    }
}

fn check(spec_src: &str, property: &str, store: StateStoreKind) -> wave_core::Verification {
    let spec = parse_spec(spec_src).expect("generated spec parses");
    let verifier =
        Verifier::with_options(spec, VerifyOptions { state_store: store, ..Default::default() })
            .expect("generated spec compiles");
    verifier.check_str(property).expect("check runs")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Interned and byte-key stores agree on verdict and lasso, and the
    /// interned verdict matches the explicit-state oracle.
    #[test]
    fn interned_search_matches_naive_oracle(
        n in 2usize..=3,
        targets in prop::collection::vec(
            prop::collection::vec(guard_strategy(), 3),
            3,
        ),
        kind in 0usize..5,
        a in 0usize..3,
        b in 0usize..3,
    ) {
        let spec_src = render_spec(n, &targets);
        let property = render_property(kind, a, b, n);

        let interned = check(&spec_src, &property, StateStoreKind::Interned);
        let byte_keys = check(&spec_src, &property, StateStoreKind::ByteKeys);

        // hash-consing is semantics-neutral: identical verdicts and,
        // on violations, identical lollipop counterexamples
        prop_assert_eq!(
            format!("{:?}", interned.verdict),
            format!("{:?}", byte_keys.verdict),
            "store ablation changed the verdict on {} / {}", spec_src, property
        );

        // oracle agreement (skip if either side ran out of budget; the
        // generated family is tiny, so neither should)
        let naive = NaiveVerifier::new(
            parse_spec(&spec_src).unwrap(),
            NaiveOptions { fresh_values: 1, ..Default::default() },
        )
        .expect("oracle compiles");
        let (oracle, _) = naive.check_str(&property).expect("oracle runs");
        match (&interned.verdict, &oracle) {
            (Verdict::Holds, NaiveVerdict::HoldsBounded)
            | (Verdict::Violated(_), NaiveVerdict::Violated) => {}
            (Verdict::Unknown(_), _)
            | (_, NaiveVerdict::Exhausted | NaiveVerdict::Explosion { .. }) => {
                // budget ran out — vacuously fine, but should not happen
            }
            (wave, oracle) => prop_assert!(
                false,
                "verdict mismatch on {spec_src} / {property}: wave={wave:?} oracle={oracle:?}"
            ),
        }
    }
}
