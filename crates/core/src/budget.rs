//! The shared search budget pool.
//!
//! A *budgeted* check gets exactly one [`BudgetPool`]: an atomic step
//! counter (the `--max-steps` allowance) plus the wall-clock deadline
//! derived from `--time-limit`. Every [`crate::ndfs::Ndfs`] search in the
//! check — whether the cores run on one thread or across a worker pool —
//! draws steps from the same pool through a [`StepLease`], so the total
//! number of generated pseudoconfigurations the check may charge is the
//! global limit, not a per-unit copy of it.
//!
//! # Lease-chunk protocol
//!
//! Charging the shared counter on every generated configuration would
//! serialize the workers on one cache line, so a lease amortizes the
//! atomic traffic: it draws `chunk` steps at a time (more when a single
//! charge is larger) and charges its local allowance. Unspent allowance
//! is refunded when the search ends, so after a search completes the
//! pool's `spent` equals exactly the steps it charged.
//!
//! The chunk size is *semantics-neutral* for any single consumer: a
//! charge fails if and only if the steps charged so far plus the new
//! charge exceed what the pool had remaining when the lease started
//! drawing — grants are `min(requested, remaining)`, so partial grants
//! merely defer the same failure point. This is what makes
//! `--budget-chunk` a tuning knob (excluded from result-cache
//! fingerprints, like the state-store backend) rather than a semantic
//! option, and it is the property the scheduler's deterministic
//! settlement relies on (see `wave-svc`'s scheduler docs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default steps drawn per lease refill (`--budget-chunk`).
pub const DEFAULT_BUDGET_CHUNK: u64 = 1024;

/// The shared budget of one check: an atomic step allowance and a
/// wall-clock deadline, drawn on by every search of the check.
#[derive(Debug)]
pub struct BudgetPool {
    /// Steps this pool may grant in total; `None` = unlimited (the pool
    /// then only carries the deadline).
    limit: Option<u64>,
    /// The *configured* global step budget, reported in
    /// [`crate::ndfs::Budget::Steps`] on exhaustion. Equal to `limit` for
    /// a primary pool; a settlement re-run pool grants only the leftover
    /// but still reports the global figure, so sequential and parallel
    /// runs produce the same exhaustion report.
    report_steps: u64,
    /// Steps granted to leases and not refunded.
    spent: AtomicU64,
    deadline: Option<Instant>,
    started: Instant,
    /// Wall-clock consumed by interrupted predecessors of this run
    /// (checkpoint resume). Kept as a `Duration` rather than folded
    /// into `started`: shifting an `Instant` into the past panics when
    /// the shift exceeds the monotonic clock's origin (e.g. resuming a
    /// multi-day run shortly after a reboot).
    prior_elapsed: Duration,
    chunk: u64,
}

impl BudgetPool {
    /// Pool for a check starting at `started` under a step and/or time
    /// budget; `None` when neither budget is set (unbudgeted checks pay
    /// no atomic traffic at all).
    pub fn new(
        max_steps: Option<u64>,
        time_limit: Option<Duration>,
        chunk: u64,
        started: Instant,
    ) -> Option<Arc<BudgetPool>> {
        BudgetPool::resumed(max_steps, time_limit, chunk, started, Duration::ZERO, 0)
    }

    /// Like [`BudgetPool::new`] but with `spent` steps already charged
    /// and `prior_elapsed` wall-clock already consumed — the checkpoint
    /// driver resumes an interrupted check under exactly the allowance
    /// it had left. The prior elapsed time is subtracted from the
    /// remaining deadline (and added to [`BudgetPool::elapsed`]), so
    /// the deadline tightens the same way the step budget does; a
    /// prior elapsed at or past the limit makes the pool expire
    /// immediately.
    pub fn resumed(
        max_steps: Option<u64>,
        time_limit: Option<Duration>,
        chunk: u64,
        started: Instant,
        prior_elapsed: Duration,
        spent: u64,
    ) -> Option<Arc<BudgetPool>> {
        if max_steps.is_none() && time_limit.is_none() {
            return None;
        }
        Some(Arc::new(BudgetPool {
            limit: max_steps,
            report_steps: max_steps.unwrap_or(0),
            spent: AtomicU64::new(spent),
            deadline: time_limit.map(|d| started + d.saturating_sub(prior_elapsed)),
            started,
            prior_elapsed,
            chunk: chunk.max(1),
        }))
    }

    /// A fresh pool granting exactly `leftover` steps but sharing this
    /// pool's deadline, start instant, chunk size and *reported* limit —
    /// the scheduler's settlement pass uses it to replay an item under
    /// the precise allowance the sequential scan would have had left.
    pub fn for_rerun(&self, leftover: u64) -> Arc<BudgetPool> {
        Arc::new(BudgetPool {
            limit: Some(leftover),
            report_steps: self.report_steps,
            spent: AtomicU64::new(0),
            deadline: self.deadline,
            started: self.started,
            prior_elapsed: self.prior_elapsed,
            chunk: self.chunk,
        })
    }

    /// Grant up to `want` steps: the return value is
    /// `min(want, remaining)` and is debited from the pool.
    fn grant(&self, want: u64) -> u64 {
        let Some(limit) = self.limit else { return want };
        let mut spent = self.spent.load(Ordering::Relaxed);
        loop {
            let granted = want.min(limit.saturating_sub(spent));
            if granted == 0 {
                return 0;
            }
            match self.spent.compare_exchange_weak(
                spent,
                spent + granted,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return granted,
                Err(actual) => spent = actual,
            }
        }
    }

    /// Return unspent granted steps to the pool.
    fn refund(&self, steps: u64) {
        if self.limit.is_some() && steps > 0 {
            self.spent.fetch_sub(steps, Ordering::Relaxed);
        }
    }

    /// Steps currently granted and not refunded. After every lease has
    /// been released this equals the steps actually charged.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The configured step limit (`None` for a deadline-only pool).
    pub fn step_limit(&self) -> Option<u64> {
        self.limit
    }

    /// The step figure to report on exhaustion (the configured global
    /// `--max-steps`, even on a settlement re-run pool).
    pub fn report_steps(&self) -> u64 {
        self.report_steps
    }

    /// Whether the shared wall-clock deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() > d)
    }

    /// True when a deadline is configured at all.
    pub fn has_deadline(&self) -> bool {
        self.deadline.is_some()
    }

    /// Wall-clock time since the check started, including the time
    /// consumed by interrupted predecessors — the figure reported in
    /// [`crate::ndfs::Budget::Time`] on deadline exhaustion.
    pub fn elapsed(&self) -> Duration {
        self.prior_elapsed + self.started.elapsed()
    }
}

/// One search's handle on the pool: a local allowance refilled in chunks.
#[derive(Debug)]
pub struct StepLease {
    pool: Arc<BudgetPool>,
    /// Steps granted but not yet charged.
    available: u64,
    /// Steps charged through this lease.
    charged: u64,
    /// Total steps granted to this lease (for profile accounting).
    leased: u64,
    /// Set once a charge failed; the pool is dry for this search.
    dry: bool,
}

impl StepLease {
    pub fn new(pool: Arc<BudgetPool>) -> StepLease {
        StepLease { pool, available: 0, charged: 0, leased: 0, dry: false }
    }

    /// Charge `steps` against the pool, refilling the local allowance in
    /// chunks as needed. Returns `false` when the pool cannot cover the
    /// charge — the search is out of budget.
    pub fn charge(&mut self, steps: u64) -> bool {
        if self.dry {
            return false;
        }
        if self.available < steps {
            let shortfall = steps - self.available;
            let got = self.pool.grant(shortfall.max(self.pool.chunk));
            self.leased += got;
            self.available += got;
            if self.available < steps {
                self.dry = true;
                return false;
            }
        }
        self.available -= steps;
        self.charged += steps;
        true
    }

    /// Steps charged so far.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// The pool's reported global step limit (see
    /// [`BudgetPool::report_steps`]).
    pub fn report_steps(&self) -> u64 {
        self.pool.report_steps()
    }

    /// Release the lease: refund the unspent allowance and report
    /// `(leased, refunded)` for profile accounting.
    pub fn release(self) -> (u64, u64) {
        self.pool.refund(self.available);
        (self.leased, self.available)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(limit: u64, chunk: u64) -> Arc<BudgetPool> {
        BudgetPool::new(Some(limit), None, chunk, Instant::now()).unwrap()
    }

    #[test]
    fn unbudgeted_checks_get_no_pool() {
        assert!(BudgetPool::new(None, None, 8, Instant::now()).is_none());
        assert!(BudgetPool::new(Some(1), None, 8, Instant::now()).is_some());
        assert!(BudgetPool::new(None, Some(Duration::from_secs(1)), 8, Instant::now()).is_some());
    }

    #[test]
    fn charges_are_exact_up_to_the_limit() {
        let p = pool(10, 4);
        let mut lease = StepLease::new(Arc::clone(&p));
        assert!(lease.charge(3));
        assert!(lease.charge(7)); // exactly 10 total
        assert!(!lease.charge(1), "the 11th step must fail");
        let (leased, refunded) = lease.release();
        assert_eq!(leased - refunded, 10);
        assert_eq!(p.spent(), 10);
    }

    #[test]
    fn exhaustion_point_is_chunk_independent() {
        // a single consumer fails at the same cumulative charge no matter
        // the chunk size — the property the settlement pass relies on
        for chunk in [1, 3, 7, 64, 1024] {
            let p = pool(25, chunk);
            let mut lease = StepLease::new(Arc::clone(&p));
            let mut total = 0u64;
            for step in [5u64, 5, 5, 5, 4, 1, 1] {
                if !lease.charge(step) {
                    break;
                }
                total += step;
            }
            assert_eq!(total, 25, "chunk={chunk}");
            assert!(!lease.charge(1), "chunk={chunk}: pool must be dry");
            lease.release();
            assert_eq!(p.spent(), 25, "chunk={chunk}: refund restores exact spend");
        }
    }

    #[test]
    fn release_refunds_unspent_allowance() {
        let p = pool(100, 64);
        let mut lease = StepLease::new(Arc::clone(&p));
        assert!(lease.charge(2));
        assert_eq!(p.spent(), 64, "a whole chunk is drawn");
        let (leased, refunded) = lease.release();
        assert_eq!((leased, refunded), (64, 62));
        assert_eq!(p.spent(), 2, "only charged steps stay spent");
    }

    #[test]
    fn concurrent_leases_never_overspend() {
        let p = pool(1000, 16);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let mut lease = StepLease::new(p);
                    while lease.charge(3) {}
                    lease.release();
                });
            }
        });
        assert!(p.spent() <= 1000);
        // 8 workers charging 3 at a time: at most 8 * 2 steps stay unspent
        assert!(p.spent() >= 1000 - 16, "spent {}", p.spent());
    }

    #[test]
    fn rerun_pool_reports_the_global_limit() {
        let p = pool(100, 8);
        let rerun = p.for_rerun(7);
        assert_eq!(rerun.step_limit(), Some(7));
        assert_eq!(rerun.report_steps(), 100);
        let mut lease = StepLease::new(Arc::clone(&rerun));
        assert!(lease.charge(7));
        assert!(!lease.charge(1));
    }

    #[test]
    fn resumed_pool_grants_only_the_leftover() {
        let p = BudgetPool::resumed(Some(10), None, 4, Instant::now(), Duration::ZERO, 7).unwrap();
        assert_eq!(p.spent(), 7);
        let mut lease = StepLease::new(Arc::clone(&p));
        assert!(lease.charge(3));
        assert!(!lease.charge(1), "only 10 - 7 steps remain");
        lease.release();
        assert_eq!(p.spent(), 10);
        assert_eq!(p.report_steps(), 10, "exhaustion still reports the global limit");
    }

    #[test]
    fn resumed_pool_survives_prior_elapsed_past_the_clock_origin() {
        // a checkpoint from a multi-day run resumed right after a reboot:
        // prior_elapsed far exceeds the monotonic clock's origin, which
        // must tighten the deadline, not panic on Instant arithmetic
        let prior = Duration::from_secs(3 * 24 * 3600);
        let p =
            BudgetPool::resumed(None, Some(Duration::from_secs(1)), 8, Instant::now(), prior, 0)
                .unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(p.deadline_exceeded(), "prior elapsed past the limit expires the pool");
        assert!(p.elapsed() >= prior, "reported elapsed includes the prior run");

        let roomy = BudgetPool::resumed(
            None,
            Some(Duration::from_secs(3600)),
            8,
            Instant::now(),
            prior.min(Duration::from_secs(60)),
            0,
        )
        .unwrap();
        assert!(!roomy.deadline_exceeded(), "remaining allowance still open");
    }

    #[test]
    fn deadline_only_pool_has_unlimited_steps() {
        let p = BudgetPool::new(None, Some(Duration::from_secs(3600)), 8, Instant::now()).unwrap();
        assert!(p.has_deadline());
        assert!(!p.deadline_exceeded());
        let mut lease = StepLease::new(Arc::clone(&p));
        assert!(lease.charge(u64::MAX / 4));
        lease.release();
        let expired =
            BudgetPool::new(None, Some(Duration::ZERO), 8, Instant::now() - Duration::from_secs(1))
                .unwrap();
        assert!(expired.deadline_exceeded());
        assert!(expired.elapsed() >= Duration::from_secs(1));
    }
}
