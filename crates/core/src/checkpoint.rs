//! Checkpoint/resume for long checks.
//!
//! A checkpointed check runs each work unit in *core-range chunks* of
//! `--checkpoint-every` cores through [`PreparedCheck::run_unit_in`],
//! keeping one state store alive per unit so the interned arena is not
//! rebuilt between chunks. After every chunk a checkpoint file is
//! written atomically (temp file + rename) into the checkpoint
//! directory, recording:
//!
//! * a **fingerprint** of the spec, the property text, and every
//!   verdict- or stats-relevant option (`budget_chunk` and `cancel` are
//!   excluded, exactly as in the result-cache fingerprint),
//! * the resume position `(unit, next_core)`,
//! * the accumulated [`Stats`] (including the search profile),
//! * the shared [`BudgetPool`] spend and the wall-clock time consumed,
//! * the unit's intern-arena payload ([`StateStore::save_state`]).
//!
//! # Resume invariant
//!
//! Checkpoints are taken only at **core boundaries**, where the visited
//! set is empty by construction (`clear_visits` runs at every core
//! start). The core scan is a pure function of `(unit, cores)` and the
//! options, interning is deterministic, and the budget pool's
//! exhaustion point is chunk-independent — so a run that is killed and
//! resumed from its last checkpoint produces a verdict and
//! deterministic statistics (configs, cores, assignments, trie sizes)
//! byte-identical to the uninterrupted run. Wall-time fields obviously
//! differ; the budget deadline still tightens correctly because the
//! resumed pool carries the recorded elapsed time and subtracts it
//! from the remaining deadline allowance.
//!
//! A checkpoint whose magic, version, fingerprint or checksum does not
//! match is **ignored** (the check restarts from scratch and overwrites
//! it) — a stale file can never corrupt a verdict. The file is deleted
//! when the check completes, whatever the verdict: an `Unknown` verdict
//! under a larger budget has a different fingerprint anyway.

use crate::budget::BudgetPool;
use crate::ndfs::SearchLimits;
use crate::profile::SearchProfile;
use crate::store::{ByteStore, InternedStore, StateStore, StateStoreKind, TieredStore};
use crate::verifier::{
    PreparedCheck, Stats, Verdict, Verification, Verifier, VerifyError, VerifyOptions,
};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use wave_ltl::parse_property;
use wave_obs::{NoopTracer, SearchTracer};
use wave_store::{fnv1a, ByteReader, ByteWriter};

/// Name of the checkpoint file inside the checkpoint directory.
pub const CHECKPOINT_FILE: &str = "wave.ckpt";

const MAGIC: u32 = 0x5743_4B50; // "WCKP"
const VERSION: u32 = 2; // v2: memo/join-build profile counters in stats

/// Where and how often to checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint file (created if missing).
    pub dir: PathBuf,
    /// Checkpoint after every `every_cores` scanned cores (minimum 1).
    pub every_cores: u64,
    /// Test hook: stop the run (as if killed) right after this many
    /// checkpoints have been written this session. `None` in production.
    pub stop_after_checkpoints: Option<u64>,
}

impl CheckpointConfig {
    /// Config checkpointing into `dir` every `every_cores` cores.
    pub fn new(dir: impl Into<PathBuf>, every_cores: u64) -> CheckpointConfig {
        CheckpointConfig { dir: dir.into(), every_cores, stop_after_checkpoints: None }
    }

    fn path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// How a checkpointed run ended.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // consumed once, never stored in bulk
pub enum CheckpointOutcome {
    /// The check ran to completion; the checkpoint file was removed.
    Finished(Verification),
    /// The `stop_after_checkpoints` test hook fired after writing this
    /// many checkpoints — the on-disk state is exactly what a kill at
    /// that instant would have left behind.
    Interrupted { checkpoints_written: u64 },
}

/// The parsed resume state of a checkpoint file.
struct Checkpoint {
    unit: u32,
    next_core: u64,
    stats: Stats,
    pool_spent: u64,
    arena: Vec<u8>,
}

/// Fingerprint of everything that shapes the verdict and deterministic
/// statistics: the spec, the property text, and the semantic options
/// plus the state-store backend (tier splits appear in the stats).
/// `budget_chunk` and `cancel` are excluded — they are tuning/control
/// knobs that cannot change what a resumed run computes.
fn fingerprint(verifier: &Verifier, property: &str) -> u64 {
    let o: &VerifyOptions = verifier.options();
    let mut w = ByteWriter::new();
    w.str(&format!("{:?}", verifier.spec().spec));
    w.str(property);
    w.u8(u8::from(o.heuristic1));
    w.u8(u8::from(o.heuristic2));
    w.str(&format!("{:?}", o.pruning));
    w.str(&format!("{:?}", o.param_mode));
    w.u64(o.max_steps.map_or(u64::MAX, |s| s));
    w.u64(o.time_limit.map_or(u64::MAX, |t| t.as_nanos() as u64));
    w.u8(u8::from(o.use_plans));
    w.str(&format!("{:?}", o.state_store));
    fnv1a(w.as_slice())
}

fn write_stats(w: &mut ByteWriter, stats: &Stats) {
    w.u64(stats.elapsed.as_nanos() as u64);
    w.u64(stats.max_run_len as u64);
    w.u64(stats.max_trie as u64);
    w.u64(stats.max_resident as u64);
    w.u64(stats.max_spilled as u64);
    w.u64(stats.configs);
    w.u64(stats.cores);
    w.u64(stats.assignments);
    let p = &stats.profile;
    for v in [
        p.canon_ns,
        p.intern_ns,
        p.expand_ns,
        p.eval_ns,
        p.visit_ns,
        p.intern_hits,
        p.intern_misses,
        p.steps_leased,
        p.steps_refunded,
        p.spill_pairs,
        p.spill_segments,
        p.spill_compactions,
        p.bloom_skips,
        p.cold_probes,
        p.memo_hits,
        p.memo_misses,
        p.join_builds,
    ] {
        w.u64(v);
    }
}

fn read_stats(r: &mut ByteReader<'_>) -> Option<Stats> {
    let elapsed = Duration::from_nanos(r.u64()?);
    let max_run_len = r.u64()? as usize;
    let max_trie = r.u64()? as usize;
    let max_resident = r.u64()? as usize;
    let max_spilled = r.u64()? as usize;
    let configs = r.u64()?;
    let cores = r.u64()?;
    let assignments = r.u64()?;
    // Slice counters are stamped per *check* after the unit merge, never
    // in per-unit stats, so they are not part of the checkpoint format.
    let mut p = [0u64; 17];
    for v in &mut p {
        *v = r.u64()?;
    }
    Some(Stats {
        queries: Vec::new(),
        elapsed,
        max_run_len,
        max_trie,
        max_resident,
        max_spilled,
        configs,
        cores,
        assignments,
        profile: SearchProfile {
            canon_ns: p[0],
            intern_ns: p[1],
            expand_ns: p[2],
            eval_ns: p[3],
            visit_ns: p[4],
            intern_hits: p[5],
            intern_misses: p[6],
            steps_leased: p[7],
            steps_refunded: p[8],
            spill_pairs: p[9],
            spill_segments: p[10],
            spill_compactions: p[11],
            bloom_skips: p[12],
            cold_probes: p[13],
            memo_hits: p[14],
            memo_misses: p[15],
            join_builds: p[16],
            ..Default::default()
        },
    })
}

/// Parse and validate a checkpoint file; `None` means "no usable
/// checkpoint" (missing, stale fingerprint, corrupt) — never an error.
fn load_checkpoint(path: &Path, fp: u64) -> Option<Checkpoint> {
    let buf = fs::read(path).ok()?;
    if buf.len() < 8 {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - 8);
    let sum = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a(body) != sum {
        return None;
    }
    let mut r = ByteReader::new(body);
    if r.u32()? != MAGIC || r.u32()? != VERSION || r.u64()? != fp {
        return None;
    }
    let unit = r.u32()?;
    let next_core = r.u64()?;
    let stats = read_stats(&mut r)?;
    let pool_spent = r.u64()?;
    let arena = r.bytes()?.to_vec();
    r.is_empty().then_some(Checkpoint { unit, next_core, stats, pool_spent, arena })
}

/// Shared mutable state of one checkpointed run.
struct Drive<'a> {
    config: &'a CheckpointConfig,
    fp: u64,
    limits: SearchLimits,
    stats: Stats,
    /// Wall-clock consumed by interrupted predecessors of this run.
    prior_elapsed: Duration,
    started: Instant,
    cores_since_ckpt: u64,
    checkpoints_written: u64,
    interrupted: bool,
}

impl Drive<'_> {
    fn elapsed(&self) -> Duration {
        self.prior_elapsed + self.started.elapsed()
    }

    /// Atomically write the checkpoint resuming at `(unit, next_core)`
    /// with `store`'s arena payload, then fire the test hook if due.
    fn write<S: StateStore>(
        &mut self,
        unit: usize,
        next_core: u64,
        store: &mut S,
    ) -> Result<(), VerifyError> {
        let mut w = ByteWriter::new();
        w.u32(MAGIC);
        w.u32(VERSION);
        w.u64(self.fp);
        w.u32(unit as u32);
        w.u64(next_core);
        let mut stats = self.stats.clone();
        stats.elapsed = self.elapsed();
        write_stats(&mut w, &stats);
        // between chunks no lease is outstanding, so `spent` is exactly
        // the steps charged so far
        w.u64(self.limits.pool.as_ref().map_or(0, |p| p.spent()));
        let mut arena = ByteWriter::new();
        if next_core > 0 {
            store.save_state(&mut arena);
        }
        w.bytes(arena.as_slice());
        w.u64(fnv1a(w.as_slice()));
        // (the final checksum hashes everything before itself; write_u64
        // appended it, so hash the slice minus the trailing 8 bytes)
        let buf = w.into_inner();

        let io = |e: std::io::Error| VerifyError::Checkpoint(e.to_string());
        let tmp = self.config.dir.join("wave.ckpt.tmp");
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&buf).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, self.config.path()).map_err(io)?;
        // fsync the directory too: without it the rename itself may not
        // survive a power loss, losing the checkpoint the caller was
        // just promised (progress only — a lost file restarts cleanly)
        #[cfg(unix)]
        fs::File::open(&self.config.dir).and_then(|d| d.sync_all()).map_err(io)?;

        self.cores_since_ckpt = 0;
        self.checkpoints_written += 1;
        if self.config.stop_after_checkpoints.is_some_and(|n| self.checkpoints_written >= n) {
            self.interrupted = true;
        }
        Ok(())
    }
}

/// Scan one unit in checkpoint-sized chunks over a persistent `store`,
/// starting at core `first_core`. Returns the unit's search outcome, or
/// `None` when the test hook interrupted the run mid-unit.
fn drive_unit<S: StateStore, T: SearchTracer>(
    prepared: &PreparedCheck<'_>,
    unit: usize,
    first_core: u64,
    arena: Option<&[u8]>,
    store: &mut S,
    drive: &mut Drive<'_>,
    tracer: &mut T,
) -> Result<Option<crate::ndfs::SearchResult>, VerifyError> {
    if let Some(blob) = arena {
        if !store.load_state(&mut ByteReader::new(blob)) {
            // the checksum passed but the arena does not decode: an
            // internal inconsistency, not a stale file — fail loudly
            // rather than silently recompute different statistics
            return Err(VerifyError::Checkpoint("arena payload does not decode".into()));
        }
    }
    let total = prepared.core_count(unit)?;
    let every = drive.config.every_cores.max(1);
    let mut next = first_core;
    while next < total {
        let end = next.saturating_add(every - drive.cores_since_ckpt).min(total);
        let outcome = prepared.run_unit_in(
            unit,
            Some(next..end),
            &drive.limits,
            store,
            tracer,
            &mut wave_obs::NoopSpans,
        )?;
        drive.stats.merge(&outcome.stats);
        match outcome.result {
            crate::ndfs::SearchResult::Clean => {}
            other => return Ok(Some(other)),
        }
        drive.cores_since_ckpt += end - next;
        next = end;
        if next < total && drive.cores_since_ckpt >= every {
            drive.write(unit, next, store)?;
            if drive.interrupted {
                return Ok(None);
            }
        }
    }
    Ok(Some(crate::ndfs::SearchResult::Clean))
}

/// Run `property` against `verifier` with checkpoint/resume under
/// `config`, resuming from an existing matching checkpoint if present.
/// See the module docs for the resume invariant.
pub fn check_checkpointed(
    verifier: &Verifier,
    property: &str,
    config: &CheckpointConfig,
) -> Result<CheckpointOutcome, VerifyError> {
    check_checkpointed_traced(verifier, property, config, &mut NoopTracer)
}

/// [`check_checkpointed`] with a tracer attached.
pub fn check_checkpointed_traced<T: SearchTracer + Send>(
    verifier: &Verifier,
    property: &str,
    config: &CheckpointConfig,
    tracer: &mut T,
) -> Result<CheckpointOutcome, VerifyError> {
    // same dedicated big-stack search thread as `Verifier::check`
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .name("wave-search".into())
            .stack_size(512 << 20)
            .spawn_scoped(scope, || check_checkpointed_inner(verifier, property, config, tracer))
            .expect("spawn search thread")
            .join()
            .expect("search thread panicked")
    })
}

fn check_checkpointed_inner<T: SearchTracer>(
    verifier: &Verifier,
    property: &str,
    config: &CheckpointConfig,
    tracer: &mut T,
) -> Result<CheckpointOutcome, VerifyError> {
    let prop = parse_property(property).map_err(VerifyError::Property)?;
    let fp = fingerprint(verifier, property);
    fs::create_dir_all(&config.dir).map_err(|e| VerifyError::Checkpoint(e.to_string()))?;
    let ckpt = load_checkpoint(&config.path(), fp);

    let started = Instant::now();
    let options = verifier.options();
    let (first_unit, first_core, prior_stats, pool_spent, arena, prior_elapsed) = match &ckpt {
        Some(c) => (
            c.unit as usize,
            c.next_core,
            c.stats.clone(),
            c.pool_spent,
            (!c.arena.is_empty()).then_some(c.arena.as_slice()),
            c.stats.elapsed,
        ),
        None => (0, 0, Stats::default(), 0, None, Duration::ZERO),
    };

    let prepared = verifier.prepare(&prop)?;
    let mut drive = Drive {
        config,
        fp,
        limits: SearchLimits {
            pool: BudgetPool::resumed(
                options.max_steps,
                options.time_limit,
                options.budget_chunk,
                started,
                prior_elapsed,
                pool_spent,
            ),
            cancel: options.cancel.clone(),
        },
        stats: prior_stats,
        prior_elapsed,
        started,
        cores_since_ckpt: 0,
        checkpoints_written: 0,
        interrupted: false,
    };

    let mut verdict = Verdict::Holds;
    for unit in first_unit..prepared.num_units() {
        let start_core = if unit == first_unit { first_core } else { 0 };
        let arena = (unit == first_unit).then_some(arena).flatten();
        // one persistent store per unit, loaded from the checkpoint's
        // arena payload when resuming mid-unit
        let result = match &options.state_store {
            StateStoreKind::Interned => {
                let mut store = InternedStore::new();
                drive_unit(&prepared, unit, start_core, arena, &mut store, &mut drive, tracer)?
            }
            StateStoreKind::ByteKeys => {
                let mut store = ByteStore::new();
                drive_unit(&prepared, unit, start_core, arena, &mut store, &mut drive, tracer)?
            }
            StateStoreKind::Tiered(params) => {
                let mut store = TieredStore::new(params);
                drive_unit(&prepared, unit, start_core, arena, &mut store, &mut drive, tracer)?
            }
        };
        match result {
            None => {
                return Ok(CheckpointOutcome::Interrupted {
                    checkpoints_written: drive.checkpoints_written,
                })
            }
            Some(crate::ndfs::SearchResult::Clean) => {
                // unit boundary: checkpoint if a full interval of cores
                // has been scanned since the last one
                if unit + 1 < prepared.num_units()
                    && drive.cores_since_ckpt >= config.every_cores.max(1)
                {
                    // arena payloads are per-unit; the next unit starts
                    // fresh, so no store state is written (next_core 0)
                    let mut fresh = InternedStore::new();
                    drive.write(unit + 1, 0, &mut fresh)?;
                    if drive.interrupted {
                        return Ok(CheckpointOutcome::Interrupted {
                            checkpoints_written: drive.checkpoints_written,
                        });
                    }
                }
            }
            Some(crate::ndfs::SearchResult::Violation(ce)) => {
                verdict = Verdict::Violated(ce);
                break;
            }
            Some(crate::ndfs::SearchResult::Exhausted(b)) => {
                verdict = Verdict::Unknown(b);
                break;
            }
        }
    }

    let _ = fs::remove_file(config.path());
    drive.stats.elapsed = drive.elapsed();
    Ok(CheckpointOutcome::Finished(Verification {
        verdict,
        stats: drive.stats,
        complete: prepared.complete,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wave_spec::parse_spec;

    /// A unique scratch dir under the system temp dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("wave-ckpt-test-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    /// A store-and-recall spec. With Heuristic 1 disabled the tag core
    /// universe is not pruned, and the property's two constants add two
    /// more `C_∃` assignments — 3 units over 16 cores in total, so both
    /// mid-unit and unit-boundary checkpoints get exercised.
    fn multiunit() -> Verifier {
        let mut v = Verifier::new(
            parse_spec(
                r#"
            spec tagged {
              database { tag(x); }
              state { seen(x); }
              inputs { pick(x); button(x); }
              home A;
              page A {
                inputs { pick, button }
                options button(x) <- x = "go";
                options pick(x) <- tag(x);
                insert seen(x) <- pick(x) & button("go");
                target B <- (exists x: pick(x)) & button("go");
              }
              page B { target A <- true; }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap();
        v.options_mut().heuristic1 = false;
        v
    }

    /// Holds: `seen` is only ever filled from `tag`, so `tag` is
    /// nonempty whenever `seen` is (the constant disjuncts just widen
    /// the assignment enumeration).
    const PROP: &str = r#"forall x: G (seen(x) -> (exists y: tag(y)) | x = "go" | x = "other")"#;

    fn deterministic(stats: &Stats) -> (u64, u64, u64, usize, usize) {
        (stats.configs, stats.cores, stats.assignments, stats.max_trie, stats.max_run_len)
    }

    #[test]
    fn fresh_checkpointed_run_matches_plain_check() {
        let verifier = multiunit();
        let baseline = verifier.check_str(PROP).unwrap();
        assert!(baseline.stats.cores > 4, "workload must be multi-core: {:?}", baseline.stats);
        assert!(baseline.stats.assignments > 1, "workload must be multi-unit");
        let tmp = TempDir::new();
        let cfg = CheckpointConfig::new(&tmp.0, 4);
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("no hook set, must finish")
        };
        assert!(v.verdict.holds(), "{:?}", v.verdict);
        assert_eq!(deterministic(&v.stats), deterministic(&baseline.stats));
        assert!(!cfg.path().exists(), "checkpoint removed on completion");
    }

    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let verifier = multiunit();
        let baseline = verifier.check_str(PROP).unwrap();
        let tmp = TempDir::new();
        let mut cfg = CheckpointConfig::new(&tmp.0, 4);
        cfg.stop_after_checkpoints = Some(1);
        let CheckpointOutcome::Interrupted { checkpoints_written } =
            check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("hook must interrupt a multi-core check")
        };
        assert_eq!(checkpoints_written, 1);
        assert!(cfg.path().exists(), "interrupt leaves the checkpoint behind");

        cfg.stop_after_checkpoints = None;
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("resume must finish")
        };
        assert!(v.verdict.holds(), "{:?}", v.verdict);
        assert_eq!(
            deterministic(&v.stats),
            deterministic(&baseline.stats),
            "resumed run must reproduce the uninterrupted statistics"
        );
        assert!(!cfg.path().exists());
    }

    #[test]
    fn repeated_interrupts_still_converge() {
        let verifier = multiunit();
        let baseline = verifier.check_str(PROP).unwrap();
        let tmp = TempDir::new();
        let mut cfg = CheckpointConfig::new(&tmp.0, 2);
        cfg.stop_after_checkpoints = Some(1);
        // every session advances at least one core (or retires a unit),
        // so the chain is bounded by the baseline's work
        let limit = baseline.stats.cores + baseline.stats.assignments + 5;
        let mut finished = None;
        let mut sessions = 0;
        for _ in 0..limit {
            sessions += 1;
            match check_checkpointed(&verifier, PROP, &cfg).unwrap() {
                CheckpointOutcome::Interrupted { .. } => continue,
                CheckpointOutcome::Finished(v) => {
                    finished = Some(v);
                    break;
                }
            }
        }
        let v = finished.expect("the chain of one-checkpoint sessions must terminate");
        assert!(sessions > 2, "the workload must have forced several interrupts");
        assert!(v.verdict.holds());
        assert_eq!(deterministic(&v.stats), deterministic(&baseline.stats));
    }

    #[test]
    fn stale_fingerprint_is_ignored() {
        let verifier = multiunit();
        let tmp = TempDir::new();
        let mut cfg = CheckpointConfig::new(&tmp.0, 1);
        cfg.stop_after_checkpoints = Some(1);
        assert!(matches!(
            check_checkpointed(&verifier, PROP, &cfg).unwrap(),
            CheckpointOutcome::Interrupted { .. }
        ));
        // different property → different fingerprint → the stale file
        // must not be adopted, and the run completes from scratch
        let other = r#"forall x: G (seen(x) -> (exists y: tag(y)) | x = "go")"#;
        cfg.stop_after_checkpoints = None;
        let baseline = verifier.check_str(other).unwrap();
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, other, &cfg).unwrap()
        else {
            panic!("must finish")
        };
        assert_eq!(v.verdict.holds(), baseline.verdict.holds());
        assert_eq!(deterministic(&v.stats), deterministic(&baseline.stats));
    }

    #[test]
    fn corrupt_checkpoint_is_ignored() {
        let verifier = multiunit();
        let baseline = verifier.check_str(PROP).unwrap();
        let tmp = TempDir::new();
        let cfg = CheckpointConfig::new(&tmp.0, 4);
        fs::write(cfg.path(), b"not a checkpoint").unwrap();
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("must finish")
        };
        assert!(v.verdict.holds());
        assert_eq!(deterministic(&v.stats), deterministic(&baseline.stats));
    }

    #[test]
    fn resume_works_under_the_tiered_backend() {
        let mut verifier = multiunit();
        verifier.options_mut().state_store = StateStoreKind::Tiered(crate::store::TierParams {
            mem_bytes: 1, // pathologically small: every core spills
            spill_dir: None,
        });
        let baseline = verifier.check_str(PROP).unwrap();
        let tmp = TempDir::new();
        let mut cfg = CheckpointConfig::new(&tmp.0, 4);
        cfg.stop_after_checkpoints = Some(2);
        assert!(matches!(
            check_checkpointed(&verifier, PROP, &cfg).unwrap(),
            CheckpointOutcome::Interrupted { .. }
        ));
        cfg.stop_after_checkpoints = None;
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("resume must finish")
        };
        assert!(v.verdict.holds(), "{:?}", v.verdict);
        assert_eq!(deterministic(&v.stats), deterministic(&baseline.stats));
        assert!(v.stats.profile.spill_pairs > 0, "the tiny budget must spill");
    }

    #[test]
    fn budget_spend_carries_across_resume() {
        let mut verifier = multiunit();
        verifier.options_mut().max_steps = Some(10_000_000);
        let tmp = TempDir::new();
        let mut cfg = CheckpointConfig::new(&tmp.0, 4);
        cfg.stop_after_checkpoints = Some(1);
        assert!(matches!(
            check_checkpointed(&verifier, PROP, &cfg).unwrap(),
            CheckpointOutcome::Interrupted { .. }
        ));
        let ckpt = load_checkpoint(&cfg.path(), fingerprint(&verifier, PROP)).unwrap();
        assert!(ckpt.pool_spent > 0, "interrupted run must have charged steps");
        cfg.stop_after_checkpoints = None;
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("resume must finish")
        };
        // resumed spend + later spend equals the sequential charge
        let baseline = verifier.check_str(PROP).unwrap();
        let spent = |s: &Stats| s.profile.steps_leased - s.profile.steps_refunded;
        assert_eq!(spent(&v.stats), spent(&baseline.stats));
        assert!(v.verdict.holds() && baseline.verdict.holds());
    }

    #[test]
    fn exhausted_budget_still_finishes_and_clears_the_checkpoint() {
        let mut verifier = multiunit();
        verifier.options_mut().max_steps = Some(5);
        let tmp = TempDir::new();
        let cfg = CheckpointConfig::new(&tmp.0, 4);
        let CheckpointOutcome::Finished(v) = check_checkpointed(&verifier, PROP, &cfg).unwrap()
        else {
            panic!("exhaustion is completion, not interruption")
        };
        assert!(matches!(v.verdict, Verdict::Unknown(_)), "{:?}", v.verdict);
        assert!(!cfg.path().exists());
    }
}
