//! A lightweight search-phase profiler.
//!
//! The `ndfs-pseudo` search spends its time in a handful of phases —
//! canonicalizing successor facts, interning configurations into the
//! hash-consed store, running `succP`, evaluating the property's FO
//! components, and probing the visited set. [`SearchProfile`] carries a
//! nanosecond counter per phase plus interner hit/miss counts, so the
//! cost split is visible in `SearchStats`, `wave check --json`, and the
//! batch/server records without an external profiler.
//!
//! The counters are sampled with `Instant::now()` pairs around each
//! phase; the phases are coarse enough (rule evaluation, full `succP`
//! calls) that the sampling overhead is noise. `expand_ns` measures the
//! whole `succP` call and therefore *includes* the canonicalization time
//! reported separately in `canon_ns`.

use std::time::Instant;

/// Per-phase wall-time (nanoseconds) and interner counters for one
/// search. Merging (`add`) sums every field.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchProfile {
    /// Canonicalizing (sort + dedup) successor fact lists, inside `succP`.
    pub canon_ns: u64,
    /// Interning configurations into the store (or byte-encoding them,
    /// under the byte-key baseline backend).
    pub intern_ns: u64,
    /// `succP` successor computation (includes `canon_ns`).
    pub expand_ns: u64,
    /// FO-component truth assignments.
    pub eval_ns: u64,
    /// Visited-set marks and membership tests.
    pub visit_ns: u64,
    /// Configurations that interned to an already-stored id.
    pub intern_hits: u64,
    /// Configurations stored for the first time.
    pub intern_misses: u64,
    /// Steps granted by the shared [`crate::budget::BudgetPool`] to this
    /// search's leases (see the lease-chunk protocol there). The split
    /// between leases depends on the chunk size and, under the parallel
    /// scheduler, on worker timing — so these two counters are reported
    /// for budget accounting but are *not* part of the deterministic
    /// record output.
    pub steps_leased: u64,
    /// Granted steps returned unspent when the leases were released.
    /// `steps_leased - steps_refunded` equals the steps actually charged.
    pub steps_refunded: u64,
    /// Visited pairs written to spill segments by the tiered store
    /// (zero under the in-memory backends). Deterministic for a given
    /// sequential search; under the parallel scheduler the per-unit
    /// split varies with the split factor, like the interner counters.
    pub spill_pairs: u64,
    /// Spill segments written (compaction outputs included).
    pub spill_segments: u64,
    /// Cold-tier merge compactions run.
    pub spill_compactions: u64,
    /// Visited-set probes the Bloom front answered without touching
    /// any tier ("definitely fresh").
    pub bloom_skips: u64,
    /// Visited-set probes that had to search the on-disk cold tier.
    pub cold_probes: u64,
    /// Rule/target evaluations answered from the delta-driven query memo
    /// without re-executing the plan (see [`crate::memo::QueryEngine`]).
    /// Like the interner counters, the per-unit split under the parallel
    /// scheduler depends on worker timing, so these are reported but not
    /// part of the deterministic record output.
    pub memo_hits: u64,
    /// Memoized rule/target evaluations that had to execute the plan.
    pub memo_misses: u64,
    /// Hash tables built by lowered hash-join operators (zero under
    /// `--naive-joins`, which keeps every join nested-loop).
    pub join_builds: u64,
    /// Rules (targets included) the wave-flow slice removed from the
    /// search (dead guards + unreachable pages). Stamped once per check
    /// from the verifier's [`crate::SliceInfo`] after the unit merge —
    /// per-unit profiles carry zero. Deterministic per check, but it
    /// differs between `--no-slice` (always zero) and the default run
    /// *by design*, so equivalence comparisons must exclude it (like
    /// `memo_hits`).
    pub slice_rules_removed: u64,
    /// Relations statically proven always-empty (memo-mask narrowing
    /// set). Stamped like `slice_rules_removed`.
    pub slice_relations_removed: u64,
    /// Rules whose guard the flow analysis refuted outright (the W0601
    /// set; a subset of `slice_rules_removed`). Stamped like
    /// `slice_rules_removed`.
    pub flow_dead_rules: u64,
}

impl SearchProfile {
    /// Fold another profile into this one (all counters add).
    pub fn add(&mut self, other: &SearchProfile) {
        self.canon_ns += other.canon_ns;
        self.intern_ns += other.intern_ns;
        self.expand_ns += other.expand_ns;
        self.eval_ns += other.eval_ns;
        self.visit_ns += other.visit_ns;
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.steps_leased += other.steps_leased;
        self.steps_refunded += other.steps_refunded;
        self.spill_pairs += other.spill_pairs;
        self.spill_segments += other.spill_segments;
        self.spill_compactions += other.spill_compactions;
        self.bloom_skips += other.bloom_skips;
        self.cold_probes += other.cold_probes;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.join_builds += other.join_builds;
        self.slice_rules_removed += other.slice_rules_removed;
        self.slice_relations_removed += other.slice_relations_removed;
        self.flow_dead_rules += other.flow_dead_rules;
    }

    /// True when every counter is zero (e.g. a cache-hit record).
    pub fn is_zero(&self) -> bool {
        *self == SearchProfile::default()
    }

    /// Total profiled time: the sum of the *disjoint* phases. `canon_ns`
    /// is excluded because `expand_ns` already includes it.
    pub fn total_ns(&self) -> u64 {
        self.intern_ns + self.expand_ns + self.eval_ns + self.visit_ns
    }

    /// Fraction of interns that hit an already-stored configuration, in
    /// `[0, 1]`; `None` before any intern happened.
    pub fn intern_hit_rate(&self) -> Option<f64> {
        let total = self.intern_hits + self.intern_misses;
        (total > 0).then(|| self.intern_hits as f64 / total as f64)
    }

    /// Fraction of memoized rule evaluations answered from the memo, in
    /// `[0, 1]`; `None` when the memo never engaged (e.g. `--naive-joins`).
    pub fn memo_hit_rate(&self) -> Option<f64> {
        let total = self.memo_hits + self.memo_misses;
        (total > 0).then(|| self.memo_hits as f64 / total as f64)
    }

    /// A phase's share of [`SearchProfile::total_ns`] as a percentage in
    /// `[0, 100]`; `None` when nothing was profiled yet. `canon_ns` is a
    /// sub-phase of `expand_ns`, so percentages of the four disjoint
    /// phases sum to ~100 while `canon` reports its own overlapping share.
    pub fn pct(&self, phase_ns: u64) -> Option<f64> {
        let total = self.total_ns();
        (total > 0).then(|| phase_ns as f64 * 100.0 / total as f64)
    }

    /// Time `f`, adding the elapsed nanoseconds to the slot `pick`
    /// selects (e.g. `|p| &mut p.eval_ns`).
    #[inline]
    pub fn time<T>(
        &mut self,
        pick: impl FnOnce(&mut Self) -> &mut u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let t0 = Instant::now();
        let out = f();
        *pick(self) += t0.elapsed().as_nanos() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_into_the_picked_slot() {
        let mut p = SearchProfile::default();
        let v = p.time(|p| &mut p.eval_ns, || 42);
        assert_eq!(v, 42);
        p.time(|p| &mut p.canon_ns, || std::thread::sleep(std::time::Duration::from_micros(50)));
        assert!(p.canon_ns >= 50_000, "{}", p.canon_ns);
        assert_eq!(p.visit_ns, 0);
    }

    #[test]
    fn derived_rates_and_percentages() {
        let p = SearchProfile::default();
        assert_eq!(p.total_ns(), 0);
        assert_eq!(p.intern_hit_rate(), None);
        assert_eq!(p.pct(p.eval_ns), None);

        let p = SearchProfile {
            canon_ns: 5,
            intern_ns: 10,
            expand_ns: 50,
            eval_ns: 30,
            visit_ns: 10,
            intern_hits: 3,
            intern_misses: 1,
            ..Default::default()
        };
        assert_eq!(p.total_ns(), 100, "canon is inside expand, not added again");
        assert_eq!(p.intern_hit_rate(), Some(0.75));
        assert_eq!(p.pct(p.expand_ns), Some(50.0));
        assert_eq!(p.pct(p.canon_ns), Some(5.0));
    }

    #[test]
    fn add_sums_everything() {
        let mut a = SearchProfile { canon_ns: 1, intern_hits: 2, ..Default::default() };
        let b = SearchProfile { canon_ns: 10, intern_misses: 3, ..Default::default() };
        a.add(&b);
        assert_eq!(a.canon_ns, 11);
        assert_eq!(a.intern_hits, 2);
        assert_eq!(a.intern_misses, 3);
        assert!(!a.is_zero());
        assert!(SearchProfile::default().is_zero());
    }
}
