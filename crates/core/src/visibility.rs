//! Relevance analysis for configuration components.
//!
//! The paper's heuristics "rely on a dataflow analysis to prune the partial
//! configurations with tuples that are irrelevant to the rules and
//! property". Beyond the core/extension pruning, three further components
//! of a pseudoconfiguration can be dropped without changing any observable
//! behaviour, collapsing otherwise-distinct configurations in the visited
//! trie:
//!
//! * **previous inputs** an input relation's `prev` shadow matters at page
//!   `V` only if some rule of `V` (or the property) mentions `prev R` —
//!   otherwise the successor's previous-input component is unobservable
//!   and can be cleared;
//! * **write-only states** — a state relation read by no rule body and
//!   absent from the property never influences anything; its insert/delete
//!   rules need not even run;
//! * **silent actions** — an action relation the property does not mention
//!   is pure output; its tuples need not be computed or stored.
//!
//! All three are observational-equivalence reductions: the pruned
//! component affects neither rule evaluation nor the property's FO
//! components, so every pruned pseudorun represents the same set of
//! genuine runs.

use std::collections::BTreeSet;
use wave_fol::Formula;
use wave_relalg::RelId;
use wave_spec::CompiledSpec;

/// Which configuration components are observable, per page and globally.
#[derive(Debug, Clone)]
pub struct Visibility {
    /// Per page: input relations whose `prev` shadow is observable there
    /// (stored as the *shadow* relation ids).
    prev_visible: Vec<BTreeSet<RelId>>,
    /// State relations read by some rule body or the property.
    state_visible: BTreeSet<RelId>,
    /// Action relations the property mentions.
    action_visible: BTreeSet<RelId>,
}

impl Visibility {
    /// Compute visibility from the compiled spec and the property's
    /// (instantiation-independent) FO components.
    pub fn compute(spec: &CompiledSpec, components: &[Formula]) -> Visibility {
        // relations (name, prev) mentioned by the property
        let mut prop_rels: BTreeSet<(String, bool)> = BTreeSet::new();
        for f in components {
            for (rel, prev) in wave_fol::relations(f) {
                prop_rels.insert((rel, prev));
            }
        }
        let prop_prev: BTreeSet<&str> =
            prop_rels.iter().filter(|(_, prev)| *prev).map(|(rel, _)| rel.as_str()).collect();

        // per page: prev mentions in any rule body of that page
        let mut prev_visible = Vec::with_capacity(spec.pages.len());
        for page in &spec.pages {
            let mut seen: BTreeSet<RelId> = BTreeSet::new();
            let add_prev = |f: &Formula, seen: &mut BTreeSet<RelId>| {
                for (rel, prev) in wave_fol::relations(f) {
                    if prev {
                        if let Some(id) = spec.schema.lookup(&wave_fol::prev_shadow_name(&rel)) {
                            seen.insert(id);
                        }
                    }
                }
            };
            for r in page.option_rules.iter().chain(&page.state_rules).chain(&page.action_rules) {
                add_prev(&r.body, &mut seen);
            }
            for t in &page.target_rules {
                add_prev(&t.condition, &mut seen);
            }
            // the property observes prev inputs at every page
            for rel in &prop_prev {
                if let Some(id) = spec.schema.lookup(&wave_fol::prev_shadow_name(rel)) {
                    seen.insert(id);
                }
            }
            prev_visible.push(seen);
        }

        // states read anywhere (rule bodies across all pages) or in property
        let mut state_visible: BTreeSet<RelId> = BTreeSet::new();
        let add_states = |f: &Formula, out: &mut BTreeSet<RelId>| {
            for (rel, _) in wave_fol::relations(f) {
                if let Some(id) = spec.schema.lookup(&rel) {
                    if spec.schema.kind(id) == wave_relalg::RelKind::State {
                        out.insert(id);
                    }
                }
            }
        };
        for page in &spec.pages {
            for r in page.option_rules.iter().chain(&page.state_rules).chain(&page.action_rules) {
                add_states(&r.body, &mut state_visible);
            }
            for t in &page.target_rules {
                add_states(&t.condition, &mut state_visible);
            }
        }
        for f in components {
            add_states(f, &mut state_visible);
        }

        // actions mentioned by the property
        let mut action_visible: BTreeSet<RelId> = BTreeSet::new();
        for (rel, _) in prop_rels {
            if let Some(id) = spec.schema.lookup(&rel) {
                if spec.schema.kind(id) == wave_relalg::RelKind::Action {
                    action_visible.insert(id);
                }
            }
        }

        Visibility { prev_visible, state_visible, action_visible }
    }

    /// Everything visible (used when reductions are disabled).
    pub fn full(spec: &CompiledSpec) -> Visibility {
        let shadows: BTreeSet<RelId> =
            spec.schema.rels().filter(|&r| spec.schema.name(r).starts_with("prev$")).collect();
        Visibility {
            prev_visible: vec![shadows; spec.pages.len()],
            state_visible: spec
                .schema
                .rels()
                .filter(|&r| spec.schema.kind(r) == wave_relalg::RelKind::State)
                .collect(),
            action_visible: spec
                .schema
                .rels()
                .filter(|&r| spec.schema.kind(r) == wave_relalg::RelKind::Action)
                .collect(),
        }
    }

    /// Is the prev shadow `shadow` observable at `page`?
    pub fn prev_observable(&self, page: wave_spec::PageId, shadow: RelId) -> bool {
        self.prev_visible[page.index()].contains(&shadow)
    }

    /// Is the state relation observable anywhere?
    pub fn state_observable(&self, state: RelId) -> bool {
        self.state_visible.contains(&state)
    }

    /// Is the action relation observable (i.e. in the property)?
    pub fn action_observable(&self, action: RelId) -> bool {
        self.action_visible.contains(&action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_spec::{parse_spec, CompiledSpec};

    fn spec() -> CompiledSpec {
        CompiledSpec::compile(
            parse_spec(
                r#"
            spec s {
              database { db(a); }
              state { readstate(a); writeonly(a); }
              action { act(a); silent(a); }
              inputs { pick(x); go(x); }
              home P;
              page P {
                inputs { pick, go }
                options pick(x) <- db(x);
                options go(x) <- x = "on";
                insert readstate(x) <- pick(x);
                insert writeonly(x) <- pick(x);
                target Q <- exists x: pick(x);
              }
              page Q {
                inputs { go }
                options go(x) <- x = "on";
                action act(x) <- exists y: prev pick(y) & x = y & readstate(x);
                action silent(x) <- readstate(x) & go("on");
                target P <- go("on");
              }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn prev_visibility_is_page_local() {
        let s = spec();
        let vis = Visibility::compute(&s, &[]);
        let shadow = s.schema.lookup("prev$pick").unwrap();
        let p = s.page_id("P").unwrap();
        let q = s.page_id("Q").unwrap();
        assert!(!vis.prev_observable(p, shadow), "P never reads prev pick");
        assert!(vis.prev_observable(q, shadow), "Q's action rule reads prev pick");
    }

    #[test]
    fn property_makes_prev_visible_everywhere() {
        let s = spec();
        let prop = wave_fol::parse_formula(r#"prev go("on")"#).unwrap();
        let vis = Visibility::compute(&s, &[prop]);
        let shadow = s.schema.lookup("prev$go").unwrap();
        for page in ["P", "Q"] {
            assert!(vis.prev_observable(s.page_id(page).unwrap(), shadow));
        }
    }

    #[test]
    fn write_only_states_are_invisible() {
        let s = spec();
        let vis = Visibility::compute(&s, &[]);
        assert!(vis.state_observable(s.schema.lookup("readstate").unwrap()));
        assert!(!vis.state_observable(s.schema.lookup("writeonly").unwrap()));
        // mentioning it in the property flips visibility
        let prop = wave_fol::parse_formula(r#"writeonly("on")"#).unwrap();
        let vis2 = Visibility::compute(&s, &[prop]);
        assert!(vis2.state_observable(s.schema.lookup("writeonly").unwrap()));
    }

    #[test]
    fn only_property_actions_are_visible() {
        let s = spec();
        let prop = wave_fol::parse_formula(r#"act("on")"#).unwrap();
        let vis = Visibility::compute(&s, &[prop]);
        assert!(vis.action_observable(s.schema.lookup("act").unwrap()));
        assert!(!vis.action_observable(s.schema.lookup("silent").unwrap()));
    }

    #[test]
    fn full_visibility_sees_everything() {
        let s = spec();
        let vis = Visibility::full(&s);
        assert!(vis.state_observable(s.schema.lookup("writeonly").unwrap()));
        assert!(vis.action_observable(s.schema.lookup("silent").unwrap()));
        let shadow = s.schema.lookup("prev$go").unwrap();
        assert!(vis.prev_observable(s.page_id("P").unwrap(), shadow));
    }
}
