//! Pseudoconfigurations: the partially specified configurations explored by
//! the `ndfs-pseudo` search (Section 3.1 of the paper).
//!
//! A pseudoconfiguration `⟨D, V, I, P, S, A⟩` carries the current page,
//! the database *extension* (the core is fixed per search and therefore
//! not stored per configuration), the current and previous inputs, the
//! state relations (ground tuples over `C` only) and the actions taken.
//!
//! Configurations are stored in canonical form (sorted tuple lists), which
//! gives structural equality and a deterministic byte encoding. Each fact
//! section is held behind an `Arc`, so `succP` successors that leave a
//! section unchanged (the common case: every successor of one expansion
//! shares its previous-input and state sections) share it copy-on-write
//! instead of deep-cloning — see [`crate::intern`] for the hash-consing
//! layer that extends the sharing across equal (not just same-origin)
//! sections.

use std::sync::Arc;
use wave_relalg::{Instance, RelId, Tuple};
use wave_spec::{CompiledSpec, PageId};

/// A canonical list of `(relation, tuple)` facts.
pub type Facts = Vec<(RelId, Tuple)>;

/// Sort and deduplicate facts into canonical order.
pub fn canonicalize(mut facts: Facts) -> Facts {
    facts.sort_unstable();
    facts.dedup();
    facts
}

/// A shared, canonical fact list (cheap to clone).
pub type SharedFacts = Arc<Facts>;

/// The shared empty fact list (`Vec::new` does not allocate, but the
/// `Arc` control block does — share one for the very common empty case).
pub fn no_facts() -> SharedFacts {
    static EMPTY: std::sync::OnceLock<SharedFacts> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A pseudoconfiguration (the core is held by the enclosing search).
///
/// Equality and hashing are structural (the `Arc`s dereference); clones
/// share the fact sections.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PseudoConfig {
    pub page: PageId,
    /// Extension tuples (database relations beyond the core).
    pub ext: SharedFacts,
    /// Current input (at most one tuple per input relation).
    pub input: SharedFacts,
    /// Previous input.
    pub prev: SharedFacts,
    /// State tuples (ground over `C`).
    pub state: SharedFacts,
    /// Action tuples emitted this step (ground over `C`).
    pub actions: SharedFacts,
}

impl PseudoConfig {
    /// The start-of-run configuration shell for `page` (empty state, no
    /// inputs yet): callers fill in `ext`, `input` and `actions`.
    pub fn initial(page: PageId) -> Self {
        PseudoConfig {
            page,
            ext: no_facts(),
            input: no_facts(),
            prev: no_facts(),
            state: no_facts(),
            actions: no_facts(),
        }
    }

    /// The five fact sections in encoding order.
    pub fn sections(&self) -> [&SharedFacts; 5] {
        [&self.ext, &self.input, &self.prev, &self.state, &self.actions]
    }

    /// Canonical byte encoding for byte-keyed visit sets. The encoding is
    /// injective: each section is length-prefixed and tuples carry their
    /// relation id.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.page.0.to_le_bytes());
        for facts in self.sections() {
            out.extend_from_slice(&(facts.len() as u32).to_le_bytes());
            for (rel, t) in facts.iter() {
                out.extend_from_slice(&rel.0.to_le_bytes());
                for v in t.values() {
                    out.extend_from_slice(&v.0.to_le_bytes());
                }
            }
        }
    }

    /// Materialize this configuration (plus the fixed `core`) into a fresh
    /// working instance for rule evaluation. `base` must be an instance
    /// holding exactly the core tuples (it is cloned, not mutated).
    pub fn materialize(&self, spec: &CompiledSpec, base: &Instance) -> Instance {
        let mut inst = base.clone();
        for (rel, t) in self
            .ext
            .iter()
            .chain(self.input.iter())
            .chain(self.prev.iter())
            .chain(self.state.iter())
            .chain(self.actions.iter())
        {
            inst.insert(*rel, t.clone());
        }
        inst.insert(spec.page(self.page).marker, Tuple::from([]));
        inst
    }

    /// Build the byte key for a search node `(automaton state, config)`.
    pub fn trie_key(&self, auto_state: usize) -> Vec<u8> {
        let mut key = Vec::with_capacity(64);
        key.extend_from_slice(&(auto_state as u32).to_le_bytes());
        self.encode(&mut key);
        key
    }
}

/// Build the base instance holding the core tuples only.
pub fn core_instance(spec: &CompiledSpec, core: &Facts) -> Instance {
    let mut inst = Instance::empty(Arc::clone(&spec.schema));
    for (rel, t) in core {
        inst.insert(*rel, t.clone());
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_relalg::Value;
    use wave_spec::{parse_spec, CompiledSpec};

    fn spec() -> CompiledSpec {
        CompiledSpec::compile(
            parse_spec(
                r#"
            spec s {
              database { db(a, b); }
              state { st(a); }
              action { act(a); }
              inputs { pick(x); }
              home P;
              page P {
                inputs { pick }
                options pick(x) <- exists y: db(x, y);
                insert st(x) <- pick(x);
                action act(x) <- pick(x);
                target P <- true;
              }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn fact(spec: &CompiledSpec, rel: &str, vals: &[u32]) -> (RelId, Tuple) {
        (
            spec.schema.lookup(rel).unwrap(),
            Tuple::from(vals.iter().map(|&v| Value(v)).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let s = spec();
        let facts = canonicalize(vec![
            fact(&s, "db", &[2, 2]),
            fact(&s, "db", &[1, 1]),
            fact(&s, "db", &[2, 2]),
        ]);
        assert_eq!(facts.len(), 2);
        assert!(facts[0].1 < facts[1].1);
    }

    #[test]
    fn encoding_is_injective_across_sections() {
        let s = spec();
        // same fact in ext vs state must encode differently
        let mut a = PseudoConfig::initial(PageId(0));
        a.ext = Arc::new(vec![fact(&s, "db", &[1, 2])]);
        let mut b = PseudoConfig::initial(PageId(0));
        b.state = Arc::new(vec![fact(&s, "db", &[1, 2])]);
        let (mut ka, mut kb) = (Vec::new(), Vec::new());
        a.encode(&mut ka);
        b.encode(&mut kb);
        assert_ne!(ka, kb);
    }

    #[test]
    fn encoding_differs_by_page_and_auto_state() {
        let a = PseudoConfig::initial(PageId(0));
        let b = PseudoConfig::initial(PageId(1));
        assert_ne!(a.trie_key(0), b.trie_key(0));
        assert_ne!(a.trie_key(0), a.trie_key(1));
    }

    #[test]
    fn equal_configs_equal_keys() {
        let s = spec();
        let mut a = PseudoConfig::initial(PageId(0));
        a.state = Arc::new(canonicalize(vec![fact(&s, "st", &[3]), fact(&s, "st", &[1])]));
        let mut b = PseudoConfig::initial(PageId(0));
        b.state = Arc::new(canonicalize(vec![fact(&s, "st", &[1]), fact(&s, "st", &[3])]));
        assert_eq!(a, b);
        assert_eq!(a.trie_key(5), b.trie_key(5));
    }

    #[test]
    fn clones_share_sections() {
        let s = spec();
        let mut a = PseudoConfig::initial(PageId(0));
        a.state = Arc::new(vec![fact(&s, "st", &[1])]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.state, &b.state), "clone is copy-on-write");
    }

    #[test]
    fn materialize_includes_core_config_and_marker() {
        let s = spec();
        let core = vec![fact(&s, "db", &[10, 11])];
        let base = core_instance(&s, &core);
        let mut c = PseudoConfig::initial(PageId(0));
        c.ext = Arc::new(vec![fact(&s, "db", &[20, 21])]);
        c.state = Arc::new(vec![fact(&s, "st", &[10])]);
        let inst = c.materialize(&s, &base);
        let db = s.schema.lookup("db").unwrap();
        let st = s.schema.lookup("st").unwrap();
        let marker = s.schema.lookup("page$P").unwrap();
        assert_eq!(inst.rel(db).len(), 2);
        assert_eq!(inst.rel(st).len(), 1);
        assert!(!inst.rel(marker).is_empty());
        // base untouched
        assert_eq!(base.rel(db).len(), 1);
    }
}
