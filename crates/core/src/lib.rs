//! `wave-core`: the wave verifier — the primary contribution of the paper
//! "A Verifier for Interactive, Data-driven Web Applications" (SIGMOD'05),
//! reimplemented in Rust.
//!
//! The verifier checks LTL-FO properties of web application specifications
//! by a nested depth-first search over *pseudoruns*: sequences of partially
//! specified configurations built lazily from a pruned database core and
//! per-page extensions. See DESIGN.md at the repository root for the
//! architecture and the mapping to the paper's sections.
//!
//! Entry point: [`Verifier`].
//!
//! ```
//! use wave_core::Verifier;
//! use wave_spec::parse_spec;
//!
//! let spec = parse_spec(r#"
//!     spec pingpong {
//!       inputs { button(x); }
//!       home A;
//!       page A {
//!         inputs { button }
//!         options button(x) <- x = "go";
//!         target B <- button("go");
//!       }
//!       page B { target A <- true; }
//!     }
//! "#).unwrap();
//! let verifier = Verifier::new(spec).unwrap();
//! // from A the site can only move to B or stay on A
//! let v = verifier.check_str("G (@A -> X (@A | @B))").unwrap();
//! assert!(v.verdict.holds());
//! ```

pub mod budget;
pub mod cancel;
pub mod checkpoint;
pub mod config;
pub mod domain;
pub mod intern;
pub mod layout;
pub mod memo;
pub mod ndfs;
pub mod profile;
pub mod replay;
pub mod slice;
pub mod store;
pub mod succ;
pub mod trie;
pub mod universe;
pub mod verifier;
pub mod visibility;

pub use budget::{BudgetPool, StepLease, DEFAULT_BUDGET_CHUNK};
pub use cancel::CancelToken;
pub use checkpoint::{
    check_checkpointed, check_checkpointed_traced, CheckpointConfig, CheckpointOutcome,
    CHECKPOINT_FILE,
};
pub use config::{canonicalize, core_instance, no_facts, Facts, PseudoConfig, SharedFacts};
pub use domain::{assignments, build_pools, Assignment, PagePool, ParamMode};
pub use intern::{ConfigId, ConfigStore, FactsId, InternStats};
pub use layout::RelLayout;
pub use memo::{QueryCost, QueryEngine};
pub use ndfs::{Budget, CounterExample, SearchLimits, SearchResult, SearchStats, TraceStep};
pub use profile::SearchProfile;
pub use replay::{replay, ReplayError};
pub use slice::SliceInfo;
pub use store::{ByteStore, InternedStore, StateStore, StateStoreKind, TierParams, TieredStore};
pub use succ::{SearchCtx, SuccError};
pub use trie::{Phase, VisitTable, VisitTrie};
pub use universe::{
    core_universe, extension_universe, ExtensionPruning, Universe, UniverseOverflow, MAX_BLOCKS,
    MAX_UNIVERSE,
};
pub use verifier::{
    PreparedCheck, Stats, UnitOutcome, Verdict, Verification, Verifier, VerifyError, VerifyOptions,
};
pub use visibility::Visibility;
// Re-exported so callers attaching a tracer don't need a direct wave-obs
// dependency for the common types.
pub use wave_obs::{
    FlightRecorder, JsonlTracer, NoopSpans, NoopTracer, SearchTracer, SpanProfiler, SpanRow,
    SpanSink, Tee, TraceEvent, NO_INDEX, TRACE_SCHEMA_VERSION,
};
// Re-exported so callers sizing the tiered backend don't need a direct
// wave-store dependency for the common types.
pub use wave_store::{TierConfig, TierCounters, TieredVisits};
