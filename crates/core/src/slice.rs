//! The verifier-side realization of the wave-flow slice.
//!
//! [`SliceInfo`] translates a [`wave_flow::FlowReport`] into the shape
//! the search consumes: a per-query-id liveness bitmap (dead or
//! unreachable rules are skipped wholesale), a per-page "has live
//! delete rules" flag (pages without one take a monotone insert fast
//! path that bypasses the insert/delete conflict machinery), and a
//! memo-mask narrowing pass (rules whose only reads of a section are
//! relations proven always-empty stop keying their memo entries on that
//! section's epoch).
//!
//! **Soundness contract** (DESIGN.md §14): every transformation here is
//! *runtime-inert* — verdicts, counterexample traces, and the
//! deterministic search counters are byte-identical with the slice on
//! or off, on every spec. A dead rule can never derive a tuple or fire
//! a transition; a page with no live delete rule produces the same
//! state set with or without the conflict bookkeeping; and an
//! always-empty relation contributes the same (empty) content to every
//! memoized evaluation. Only wall-time and the memo hit/miss split may
//! differ. The [`wave_flow`] analyses err toward "don't know", so
//! anything pruned here is impossible in every run over every database.

use std::collections::BTreeSet;

use wave_flow::{RuleKind, RuleRef};
use wave_spec::{sections, CompiledSpec};

/// Slice facts in the verifier's coordinates, computed once per
/// [`crate::Verifier`] and shared by every prepared check.
#[derive(Clone, Debug)]
pub struct SliceInfo {
    /// Liveness by dense query id (`reads.qid`); targets included.
    live: Vec<bool>,
    /// Per page (by [`wave_spec::PageId`] index): does it host a live
    /// delete rule? `false` enables the monotone insert fast path.
    page_has_live_delete: Vec<bool>,
    /// Rules (including targets) the slice removes from the search.
    pub rules_removed: u64,
    /// Relations statically proven always-empty (the memo-mask
    /// narrowing set).
    pub relations_removed: u64,
    /// Rules whose guard the flow analysis refuted outright.
    pub dead_rules: u64,
    /// State relations inserted but never deleted (reporting only; the
    /// fast path keys off `page_has_live_delete`).
    pub monotone_relations: Vec<String>,
}

impl SliceInfo {
    /// The identity slice for `--no-slice`: every rule live, delete
    /// handling wherever a delete rule exists syntactically, no mask
    /// narrowing, all counters zero.
    pub fn full(spec: &CompiledSpec) -> SliceInfo {
        SliceInfo {
            live: vec![true; spec.num_queries as usize],
            page_has_live_delete: spec
                .pages
                .iter()
                .map(|p| p.state_rules.iter().any(|r| !r.insert))
                .collect(),
            rules_removed: 0,
            relations_removed: 0,
            dead_rules: 0,
            monotone_relations: Vec::new(),
        }
    }

    /// Run the flow analyses over the compiled spec and build the
    /// slice, narrowing the memo read-masks in place (the compiled
    /// rule order is the AST rule order, so [`RuleRef`]s translate to
    /// query ids positionally).
    pub fn compute(spec: &mut CompiledSpec) -> SliceInfo {
        let report = wave_flow::analyze(&spec.spec);

        let mut live = vec![true; spec.num_queries as usize];
        let mut rules_removed = 0u64;
        for (pi, page) in spec.pages.iter().enumerate() {
            let mut mark = |kind: RuleKind, index: usize, qid: u32| {
                if !report.is_live(&RuleRef { page: pi, kind, index }) {
                    live[qid as usize] = false;
                    rules_removed += 1;
                }
            };
            for (i, r) in page.option_rules.iter().enumerate() {
                mark(RuleKind::Option, i, r.reads.qid);
            }
            for (i, r) in page.state_rules.iter().enumerate() {
                mark(RuleKind::State, i, r.reads.qid);
            }
            for (i, r) in page.action_rules.iter().enumerate() {
                mark(RuleKind::Action, i, r.reads.qid);
            }
            for (i, t) in page.target_rules.iter().enumerate() {
                mark(RuleKind::Target, i, t.reads.qid);
            }
        }

        narrow_masks(spec, &report.never_nonempty);

        SliceInfo {
            live,
            page_has_live_delete: report.page_has_live_delete.clone(),
            rules_removed,
            relations_removed: report.never_nonempty.len() as u64,
            dead_rules: report.dead.len() as u64,
            monotone_relations: report.monotone.clone(),
        }
    }

    /// May the rule with query id `qid` ever fire?
    #[inline]
    pub fn live(&self, qid: u32) -> bool {
        self.live[qid as usize]
    }

    /// Does the page host a live delete rule? `false` means inserts can
    /// go straight into the state set.
    #[inline]
    pub fn has_live_delete(&self, page: usize) -> bool {
        self.page_has_live_delete[page]
    }
}

/// Clear memo-mask section bits for rules whose only reads of that
/// section are always-empty relations: the section's contents can never
/// influence the rule's result, so its epoch need not key the memo.
/// Database relations, page markers, and input constants are never in
/// `empty`, so the EXT/PAGE bits (and any INPUT bit they contribute)
/// are untouched.
fn narrow_masks(spec: &mut CompiledSpec, empty: &BTreeSet<String>) {
    if empty.is_empty() {
        return;
    }
    let schema = spec.schema.clone();
    // which narrowable section a relation name read by a body occupies
    let section_of = |rel: &str, prev: bool| -> Option<u8> {
        use wave_relalg::RelKind;
        let id = schema.lookup(rel)?;
        Some(match schema.kind(id) {
            RelKind::State => sections::STATE,
            RelKind::Action => sections::ACTIONS,
            RelKind::Input | RelKind::InputConstant if prev => sections::PREV,
            RelKind::Input | RelKind::InputConstant => sections::INPUT,
            // EXT / PAGE reads always keep their bits
            RelKind::Database => return None,
        })
    };
    for page in &mut spec.pages {
        let rules =
            page.option_rules.iter_mut().chain(&mut page.state_rules).chain(&mut page.action_rules);
        for rule in rules {
            rule.reads.mask &= !clearable(&rule.body, empty, &section_of);
        }
        for t in &mut page.target_rules {
            t.reads.mask &= !clearable(&t.condition, empty, &section_of);
        }
    }
}

/// Section bits where *every* read the body makes of the section is an
/// always-empty relation. A section read by any non-empty (or
/// untracked) relation keeps its bit.
fn clearable(
    body: &wave_fol::Formula,
    empty: &BTreeSet<String>,
    section_of: &impl Fn(&str, bool) -> Option<u8>,
) -> u8 {
    let mut all_empty = 0u8; // sections read only through empty relations so far
    let mut keep = 0u8; // sections with at least one live read
    let mut visit = |rel: &str, prev: bool| {
        if let Some(bit) = section_of(rel, prev) {
            if empty.contains(rel) {
                all_empty |= bit;
            } else {
                keep |= bit;
            }
        }
    };
    body.visit_atoms(&mut |a| visit(&a.rel, a.prev));
    visit_input_empty(body, &mut visit);
    all_empty & !keep
}

/// `InputEmpty` tests read the relation's section too.
fn visit_input_empty(f: &wave_fol::Formula, visit: &mut impl FnMut(&str, bool)) {
    use wave_fol::Formula as F;
    match f {
        F::InputEmpty { rel, prev } => visit(rel, *prev),
        F::Not(x) | F::Exists(_, x) | F::Forall(_, x) => visit_input_empty(x, visit),
        F::And(xs) | F::Or(xs) => xs.iter().for_each(|x| visit_input_empty(x, visit)),
        F::Implies(a, b) => {
            visit_input_empty(a, visit);
            visit_input_empty(b, visit);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_spec::parse_spec;

    fn dirty() -> CompiledSpec {
        CompiledSpec::compile(
            parse_spec(
                r#"
                spec dirty {
                  state { log(entry); ghost(x); }
                  inputs { pick(choice); }
                  home A;
                  page A {
                    inputs { pick }
                    options pick(c) <- c = "go" | c = "stay";
                    insert log(c) <- pick(c);
                    insert ghost(c) <- pick(c) & c = "teleport";
                    delete log(c) <- ghost(c) & pick(c);
                    target B <- pick("go");
                    target Ghost <- ghost("x");
                  }
                  page B {
                    inputs { pick }
                    options pick(c) <- c = "go";
                    target A <- pick("go");
                  }
                  page Ghost {
                    inputs { pick }
                    options pick(c) <- c = "go";
                    target A <- pick("go");
                  }
                }
                "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn full_slice_is_identity() {
        let spec = dirty();
        let slice = SliceInfo::full(&spec);
        assert_eq!(slice.rules_removed, 0);
        assert!((0..spec.num_queries).all(|q| slice.live(q)));
        // page A has a syntactic delete rule, so no fast path there
        assert!(slice.has_live_delete(0));
        assert!(!slice.has_live_delete(1));
    }

    #[test]
    fn computed_slice_kills_dead_rules_and_enables_fast_path() {
        let mut spec = dirty();
        let slice = SliceInfo::compute(&mut spec);
        assert!(slice.dead_rules >= 2, "ghost insert + delete log + ghost target: {slice:?}");
        assert!(slice.rules_removed >= slice.dead_rules);
        assert_eq!(slice.relations_removed, 1, "ghost is always empty");
        assert_eq!(slice.monotone_relations, vec!["log".to_string()]);
        // the only delete rule is dead (guarded by ghost), so every page
        // takes the monotone fast path
        assert!(!slice.has_live_delete(0));

        // the dead ghost insert's qid is dead, the live log insert's is not
        let page_a = &spec.pages[0];
        let log_insert = &page_a.state_rules[0];
        let ghost_insert = &page_a.state_rules[1];
        assert!(slice.live(log_insert.reads.qid));
        assert!(!slice.live(ghost_insert.reads.qid));

        // mask narrowing: the delete rule reads only ghost in the STATE
        // section, so its STATE bit is cleared
        let del = &page_a.state_rules[2];
        assert_eq!(del.reads.mask & sections::STATE, 0, "mask {:#b}", del.reads.mask);
        // the target on A that tests ghost loses STATE too
        let ghost_target = &page_a.target_rules[1];
        assert_eq!(ghost_target.reads.mask & sections::STATE, 0);
    }
}
