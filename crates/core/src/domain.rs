//! Verification-session domains: the constant set `C = C_W ∪ C_∃`, the
//! per-page fresh-witness pools `C_V`, and the enumeration of assignments
//! for the property's universally quantified variables.
//!
//! The paper's `ndfs-pseudo` "considers all choices for C_∃, ranging from a
//! subset of C_W to a disjoint set of arbitrarily picked fresh constants".
//! Enumerating all `(|C_W|+k)^k` functions is hopeless for properties like
//! E1/P5 (seven variables); we apply the relevance reduction implied by the
//! paper's own measurements: a variable only needs to take a *named*
//! constant value when that constant is in the dataflow comparison set of
//! some attribute the variable occupies (any other constant behaves exactly
//! like a fresh value), and fresh values are canonicalized. Two modes:
//!
//! * [`ParamMode::DistinctFresh`] (default): each variable ranges over its
//!   relevant constants plus one fresh value distinct from everything;
//! * [`ParamMode::ExhaustiveEquality`]: additionally enumerates all
//!   equality patterns among fresh-assigned variables (restricted-growth
//!   set partitions) — the fully conservative mode.

use std::collections::BTreeSet;
use wave_fol::{Atom, Formula, Term};
use wave_relalg::{SymbolTable, Value};
use wave_spec::{CompiledPage, CompiledSpec, Dataflow, PageId};

/// How `C_∃` assignments treat fresh values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamMode {
    /// One fresh value per variable, all distinct.
    DistinctFresh,
    /// All equality patterns among fresh-assigned variables.
    ExhaustiveEquality,
}

/// One choice of values for the property's universal variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// `(variable, value)` in declaration order.
    pub values: Vec<(String, Value)>,
}

impl Assignment {
    /// The substitution map sending each variable to a constant term whose
    /// name is interned to the assigned value.
    pub fn substitution(&self, symbols: &SymbolTable) -> std::collections::HashMap<String, Term> {
        self.values
            .iter()
            .map(|(var, val)| {
                let name = match symbols.kind(*val) {
                    wave_relalg::ValueKind::Constant(c) => c.clone(),
                    other => panic!("assignment to non-constant value {other:?}"),
                };
                (var.clone(), Term::Const(name))
            })
            .collect()
    }

    /// The distinct values used (the paper's `C_∃`).
    pub fn c_exists(&self) -> Vec<Value> {
        let mut vs: Vec<Value> = self.values.iter().map(|&(_, v)| v).collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }
}

/// Enumerate the candidate assignments for `vars`, given per-variable
/// relevant constants and interned parameter values `params[i]` (fresh
/// pseudo-constants `?0`, `?1`, …).
pub fn assignments(
    vars: &[String],
    relevant: &[Vec<Value>],
    params: &[Value],
    mode: ParamMode,
) -> Vec<Assignment> {
    assert_eq!(vars.len(), relevant.len());
    assert!(params.len() >= vars.len());
    let mut out = Vec::new();
    // choice per variable: Some(const value) or None (fresh)
    let mut choice: Vec<Option<Value>> = vec![None; vars.len()];
    fn rec(
        i: usize,
        vars: &[String],
        relevant: &[Vec<Value>],
        params: &[Value],
        mode: ParamMode,
        choice: &mut Vec<Option<Value>>,
        out: &mut Vec<Assignment>,
    ) {
        if i == vars.len() {
            // assign fresh classes to the None positions
            let fresh_idx: Vec<usize> = (0..vars.len()).filter(|&j| choice[j].is_none()).collect();
            match mode {
                ParamMode::DistinctFresh => {
                    let mut values = Vec::with_capacity(vars.len());
                    let mut next = 0;
                    for (j, var) in vars.iter().enumerate() {
                        let v = match choice[j] {
                            Some(c) => c,
                            None => {
                                let v = params[next];
                                next += 1;
                                v
                            }
                        };
                        values.push((var.clone(), v));
                    }
                    out.push(Assignment { values });
                }
                ParamMode::ExhaustiveEquality => {
                    // restricted-growth strings over the fresh positions
                    let k = fresh_idx.len();
                    let mut rgs = vec![0usize; k];
                    loop {
                        let mut values = Vec::with_capacity(vars.len());
                        let mut fi = 0;
                        for (j, var) in vars.iter().enumerate() {
                            let v = match choice[j] {
                                Some(c) => c,
                                None => {
                                    let v = params[rgs[fi]];
                                    fi += 1;
                                    v
                                }
                            };
                            values.push((var.clone(), v));
                        }
                        out.push(Assignment { values });
                        // next restricted-growth string
                        let mut pos = k;
                        loop {
                            if pos == 0 {
                                return;
                            }
                            pos -= 1;
                            let max_allowed = rgs[..pos].iter().copied().max().map_or(0, |m| m + 1);
                            if rgs[pos] < max_allowed {
                                rgs[pos] += 1;
                                for r in rgs[pos + 1..].iter_mut() {
                                    *r = 0;
                                }
                                break;
                            }
                        }
                        if k == 0 {
                            return;
                        }
                    }
                }
            }
            return;
        }
        for &c in &relevant[i] {
            choice[i] = Some(c);
            rec(i + 1, vars, relevant, params, mode, choice, out);
        }
        choice[i] = None;
        rec(i + 1, vars, relevant, params, mode, choice, out);
    }
    rec(0, vars, relevant, params, mode, &mut choice, &mut out);
    out
}

/// Relevant constants per property variable: constants in the comparison
/// sets of the attributes the variable occupies, plus constants it is
/// directly compared to in the property.
pub fn relevant_constants(
    vars: &[String],
    components: &[Formula],
    flow: &Dataflow,
    symbols: &SymbolTable,
) -> Vec<Vec<Value>> {
    vars.iter()
        .map(|v| {
            let mut consts: BTreeSet<String> = BTreeSet::new();
            for f in components {
                // positions the variable occupies
                f.visit_atoms(&mut |a: &Atom| {
                    for (j, t) in a.terms.iter().enumerate() {
                        if t.as_var() == Some(v) {
                            consts.extend(flow.consts(&a.rel, j).map(str::to_owned));
                        }
                    }
                });
                // direct comparisons x = "c" / x != "c"
                collect_direct(f, v, &mut consts);
            }
            consts.iter().filter_map(|c| symbols.lookup_constant(c)).collect()
        })
        .collect()
}

fn collect_direct(f: &Formula, var: &str, out: &mut BTreeSet<String>) {
    match f {
        Formula::Eq(a, b) | Formula::Ne(a, b) => match (a, b) {
            (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) if x == var => {
                out.insert(c.clone());
            }
            _ => {}
        },
        Formula::Not(x) => collect_direct(x, var, out),
        Formula::And(xs) | Formula::Or(xs) => {
            for x in xs {
                collect_direct(x, var, out);
            }
        }
        Formula::Implies(a, b) => {
            collect_direct(a, var, out);
            collect_direct(b, var, out);
        }
        Formula::Exists(_, x) | Formula::Forall(_, x) => collect_direct(x, var, out),
        _ => {}
    }
}

/// The fresh-witness pool `C_V` of one page: a value per option-rule
/// variable (head and existential) and one per input constant.
#[derive(Clone, Debug, Default)]
pub struct PagePool {
    /// `(rule index, variable) → value` for option-rule variables.
    pub opt_vars: Vec<((usize, String), Value)>,
    /// `input-constant relation → value`.
    pub input_consts: Vec<(wave_relalg::RelId, Value)>,
}

impl PagePool {
    /// All pool values.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.opt_vars.iter().map(|&(_, v)| v).chain(self.input_consts.iter().map(|&(_, v)| v))
    }

    /// Value for an option-rule variable.
    pub fn opt_var(&self, rule: usize, var: &str) -> Option<Value> {
        self.opt_vars.iter().find(|((r, v), _)| *r == rule && v == var).map(|&(_, v)| v)
    }

    /// Pool size (the paper's bound: total option-rule variables).
    pub fn len(&self) -> usize {
        self.opt_vars.len() + self.input_consts.len()
    }

    /// True when the page needs no fresh witnesses.
    pub fn is_empty(&self) -> bool {
        self.opt_vars.is_empty() && self.input_consts.is_empty()
    }
}

/// Mint the `C_V` pools for every page (deterministic order).
pub fn build_pools(spec: &CompiledSpec, symbols: &mut SymbolTable) -> Vec<PagePool> {
    spec.pages
        .iter()
        .enumerate()
        .map(|(pi, page)| build_page_pool(spec, PageId(pi as u32), page, symbols))
        .collect()
}

fn build_page_pool(
    spec: &CompiledSpec,
    _id: PageId,
    page: &CompiledPage,
    symbols: &mut SymbolTable,
) -> PagePool {
    let mut pool = PagePool::default();
    let mut ord = 0u32;
    for (ri, rule) in page.option_rules.iter().enumerate() {
        let mut vars: Vec<String> = rule.head_vars.clone();
        for v in all_vars(&rule.body) {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        for v in vars {
            pool.opt_vars.push(((ri, v), symbols.fresh(&page.name, ord)));
            ord += 1;
        }
    }
    for &input in &page.inputs {
        if spec.schema.kind(input) == wave_relalg::RelKind::InputConstant {
            pool.input_consts.push((input, symbols.fresh(&page.name, ord)));
            ord += 1;
        }
    }
    pool
}

/// All variables of a formula (free and bound), first-occurrence order.
fn all_vars(f: &Formula) -> Vec<String> {
    let mut out = Vec::new();
    fn term(t: &Term, out: &mut Vec<String>) {
        if let Term::Var(v) = t {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
    fn walk(f: &Formula, out: &mut Vec<String>) {
        match f {
            Formula::Atom(a) => a.terms.iter().for_each(|t| term(t, out)),
            Formula::Eq(a, b) | Formula::Ne(a, b) => {
                term(a, out);
                term(b, out);
            }
            Formula::Not(x) => walk(x, out),
            Formula::And(xs) | Formula::Or(xs) => xs.iter().for_each(|x| walk(x, out)),
            Formula::Implies(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Formula::Exists(vs, x) | Formula::Forall(vs, x) => {
                for v in vs {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                walk(x, out);
            }
            _ => {}
        }
    }
    walk(f, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: u32) -> Vec<Value> {
        (100..100 + n).map(Value).collect()
    }

    #[test]
    fn distinct_fresh_counts() {
        // two vars, no relevant constants → exactly one assignment
        let vars = vec!["x".to_string(), "y".to_string()];
        let a = assignments(&vars, &[vec![], vec![]], &vals(2), ParamMode::DistinctFresh);
        assert_eq!(a.len(), 1);
        assert_ne!(a[0].values[0].1, a[0].values[1].1, "fresh values distinct");
    }

    #[test]
    fn constants_multiply_choices() {
        let vars = vec!["x".to_string(), "y".to_string()];
        let c1 = Value(1);
        let c2 = Value(2);
        let a = assignments(&vars, &[vec![c1, c2], vec![c1]], &vals(2), ParamMode::DistinctFresh);
        // x ∈ {c1, c2, fresh} × y ∈ {c1, fresh} = 6
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn exhaustive_equality_enumerates_partitions() {
        let vars: Vec<String> = (0..3).map(|i| format!("v{i}")).collect();
        let a =
            assignments(&vars, &[vec![], vec![], vec![]], &vals(3), ParamMode::ExhaustiveEquality);
        // Bell(3) = 5 partitions of three fresh variables
        assert_eq!(a.len(), 5);
        // all assignments distinct
        let mut seen: Vec<Vec<Value>> = Vec::new();
        for asg in &a {
            let vs: Vec<Value> = asg.values.iter().map(|&(_, v)| v).collect();
            assert!(!seen.contains(&vs), "duplicate {vs:?}");
            seen.push(vs);
        }
    }

    #[test]
    fn exhaustive_equality_with_constants() {
        let vars = vec!["x".to_string(), "y".to_string()];
        let c = Value(7);
        let a = assignments(&vars, &[vec![c], vec![]], &vals(2), ParamMode::ExhaustiveEquality);
        // x=c: y fresh (1 partition) → 1; x fresh: y fresh with Bell(2)=2 → 2
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn c_exists_dedups() {
        let a = Assignment { values: vec![("x".into(), Value(5)), ("y".into(), Value(5))] };
        assert_eq!(a.c_exists(), vec![Value(5)]);
    }

    #[test]
    fn zero_vars_single_empty_assignment() {
        let a = assignments(&[], &[], &[], ParamMode::DistinctFresh);
        assert_eq!(a.len(), 1);
        assert!(a[0].values.is_empty());
        let b = assignments(&[], &[], &[], ParamMode::ExhaustiveEquality);
        assert_eq!(b.len(), 1);
    }
}
