//! Successor computation for pseudoconfigurations — the paper's `succP`
//! procedure plus the construction of the start pseudoconfigurations.
//!
//! Given `Cs = ⟨Ds, Vs, Is, Ps, Ss, As⟩`:
//!
//! 1. the target page `Vt` is the unique page whose target condition holds
//!    on `Cs` (zero or several true conditions ⇒ "no transition occurs",
//!    modeled as staying on `Vs`),
//! 2. the new state `St` applies the insert/delete rules (insert/delete
//!    conflicts are no-ops) and keeps only tuples over `C`,
//! 3. `Pt := Is` (the input becomes the previous input),
//! 4. for every extension in `ext(Vt)` (Heuristic-2 pruned): compute the
//!    input options by running `Vt`'s option rules, and for every input
//!    choice compute the actions (kept over `C`) — yielding one successor
//!    pseudoconfiguration per (extension, input choice).

use crate::config::{canonicalize, no_facts, Facts, PseudoConfig, SharedFacts};
use crate::domain::PagePool;
use crate::memo::QueryEngine;
use crate::profile::SearchProfile;
use crate::universe::{extension_universe, ExtensionPruning, UniverseOverflow};
use crate::visibility::Visibility;
use std::cell::OnceCell;
use std::collections::BTreeSet;
use std::sync::Arc;
use wave_fol::{answers, eval, prev_shadow_name, Bindings, EvalCtx, EvalError, SchemaResolver};
use wave_obs::{SearchTracer, SpanSink, TraceEvent};
use wave_relalg::{Instance, Params, RelKind, Relation, Tuple, Value};
use wave_spec::{CompiledRule, CompiledSpec, Dataflow, PageId, RuleExec, TargetExec};

/// Errors during successor computation.
#[derive(Debug)]
pub enum SuccError {
    Overflow(UniverseOverflow),
    Eval(EvalError),
    Exec(wave_relalg::ExecError),
}

impl std::fmt::Display for SuccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuccError::Overflow(e) => write!(f, "{e}"),
            SuccError::Eval(e) => write!(f, "rule evaluation failed: {e}"),
            SuccError::Exec(e) => write!(f, "plan execution failed: {e}"),
        }
    }
}

impl std::error::Error for SuccError {}

impl From<UniverseOverflow> for SuccError {
    fn from(e: UniverseOverflow) -> Self {
        SuccError::Overflow(e)
    }
}

impl From<EvalError> for SuccError {
    fn from(e: EvalError) -> Self {
        SuccError::Eval(e)
    }
}

impl From<wave_relalg::ExecError> for SuccError {
    fn from(e: wave_relalg::ExecError) -> Self {
        SuccError::Exec(e)
    }
}

/// Everything fixed during one core's search.
pub struct SearchCtx<'a> {
    pub spec: &'a CompiledSpec,
    /// Session symbol table (spec symbols + pools + property params).
    pub symbols: &'a wave_relalg::SymbolTable,
    pub pools: &'a [PagePool],
    pub flow: &'a Dataflow,
    /// The constant set `C = C_W ∪ property constants ∪ C_∃`,
    /// sorted (membership tests binary-search it).
    pub c_values: Vec<Value>,
    /// Instance holding exactly the core tuples.
    pub base: Instance,
    pub pruning: ExtensionPruning,
    pub heuristic2: bool,
    /// When false, every rule is interpreted (ablation baseline).
    pub use_plans: bool,
    /// Observability of prev inputs / states / actions (relevance pruning).
    pub visibility: Visibility,
    /// The wave-flow slice: per-qid rule liveness and the monotone
    /// delete fast-path flags. The identity slice under `--no-slice`;
    /// every skip it licenses is runtime-inert (see [`crate::SliceInfo`]).
    pub slice: std::sync::Arc<crate::slice::SliceInfo>,
    /// Optimized-plan overlay and delta-driven result memo for this core
    /// (holds interior mutability, so a context is built per worker).
    pub engine: QueryEngine,
}

/// Lazily materialized evaluation state for one pseudoconfiguration.
/// Materializing the working instance clones the whole base, binding
/// parameters scans it, and the quantification domain sorts every value
/// in it — but a configuration whose queries all hit the result memo
/// needs none of the three. Deferring them behind `OnceCell`s means a
/// fully memoized expansion never touches the instance at all.
struct EvalState<'a> {
    ctx: &'a SearchCtx<'a>,
    cfg: &'a PseudoConfig,
    inst: OnceCell<Instance>,
    params: OnceCell<Params>,
    domain: OnceCell<Vec<Value>>,
}

impl<'a> EvalState<'a> {
    fn new(ctx: &'a SearchCtx<'a>, cfg: &'a PseudoConfig) -> EvalState<'a> {
        EvalState {
            ctx,
            cfg,
            inst: OnceCell::new(),
            params: OnceCell::new(),
            domain: OnceCell::new(),
        }
    }

    /// The working instance `cfg` denotes (base ∪ sections ∪ marker).
    fn inst(&self) -> &Instance {
        self.inst.get_or_init(|| self.cfg.materialize(self.ctx.spec, &self.ctx.base))
    }

    /// Parameter bindings for the working instance.
    fn params(&self) -> &Params {
        self.params.get_or_init(|| self.ctx.spec.bind_params(self.inst()))
    }

    /// Quantification domain at the working instance: active domain ∪ `C`.
    fn domain(&self) -> &[Value] {
        self.domain.get_or_init(|| {
            let mut dom = self.inst().active_domain();
            dom.extend_from_slice(&self.ctx.c_values);
            dom.sort_unstable();
            dom.dedup();
            dom
        })
    }
}

impl SearchCtx<'_> {
    /// Run one rule, returning its derived head tuples. The memo keys
    /// the result on the epochs of the sections the rule reads;
    /// `ev.inst()` materializes only on a miss (or for interpreted
    /// rules). Under a profiling run, the evaluation is wrapped in a
    /// `query:<qid>` span frame (both execution paths).
    fn run_rule<P: SpanSink>(
        &self,
        rule: &CompiledRule,
        ev: &EvalState<'_>,
        page_name: &str,
        spans: &mut P,
    ) -> Result<Vec<Tuple>, SuccError> {
        if P::ENABLED {
            spans.enter("query", u64::from(rule.reads.qid));
        }
        let out = self.run_rule_inner(rule, ev, page_name);
        if P::ENABLED {
            spans.exit();
        }
        out
    }

    fn run_rule_inner(
        &self,
        rule: &CompiledRule,
        ev: &EvalState<'_>,
        page_name: &str,
    ) -> Result<Vec<Tuple>, SuccError> {
        if self.use_plans {
            if let RuleExec::Plan(q) = &rule.exec {
                return Ok(self
                    .engine
                    .run_rows(rule.reads, q, ev.cfg, || (ev.inst(), ev.params()))?);
            }
        }
        let ctx = EvalCtx {
            instance: ev.inst(),
            symbols: self.symbols,
            current_page: Some(page_name),
            domain: ev.domain(),
        };
        let rows = answers(&rule.body, &rule.head_vars, &ctx, &SchemaResolver(&self.spec.schema))?;
        Ok(rows.into_iter().map(Tuple::from).collect())
    }

    /// Evaluate a target condition (a sentence).
    fn target_holds<P: SpanSink>(
        &self,
        t: &wave_spec::CompiledTarget,
        ev: &EvalState<'_>,
        page_name: &str,
        spans: &mut P,
    ) -> Result<bool, SuccError> {
        if P::ENABLED {
            spans.enter("query", u64::from(t.reads.qid));
        }
        let out = self.target_holds_inner(t, ev, page_name);
        if P::ENABLED {
            spans.exit();
        }
        out
    }

    fn target_holds_inner(
        &self,
        t: &wave_spec::CompiledTarget,
        ev: &EvalState<'_>,
        page_name: &str,
    ) -> Result<bool, SuccError> {
        if self.use_plans {
            if let TargetExec::Plan(q) = &t.exec {
                return Ok(self
                    .engine
                    .run_bool(t.reads, q, ev.cfg, || (ev.inst(), ev.params()))?);
            }
        }
        let ctx = EvalCtx {
            instance: ev.inst(),
            symbols: self.symbols,
            current_page: Some(page_name),
            domain: ev.domain(),
        };
        Ok(eval(&t.condition, &ctx, &SchemaResolver(&self.spec.schema), &mut Bindings::new())?)
    }

    /// Is every value of the tuple in `C`? (States and actions keep only
    /// ground tuples over `C`.)
    fn over_c(&self, t: &Tuple) -> bool {
        t.values().iter().all(|v| self.c_values.binary_search(v).is_ok())
    }

    /// The start pseudoconfigurations over the context's core: home page,
    /// empty state and previous input, every extension and input choice.
    /// `prof` collects the canonicalization share of the work; `tracer`
    /// receives one [`TraceEvent::Options`] per extension.
    pub fn initial_configs<T: SearchTracer, P: SpanSink>(
        &self,
        prof: &mut SearchProfile,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<Vec<PseudoConfig>, SuccError> {
        self.expand_page(self.spec.home, Vec::new(), Vec::new(), prof, tracer, spans)
    }

    /// The paper's `succP`. `prof` collects the canonicalization share of
    /// the work (the caller times the whole call as `expand_ns`).
    pub fn successors<T: SearchTracer, P: SpanSink>(
        &self,
        cfg: &PseudoConfig,
        prof: &mut SearchProfile,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<Vec<PseudoConfig>, SuccError> {
        let ev = EvalState::new(self, cfg);
        let page = self.spec.page(cfg.page);

        // 1) target page (statically dead conditions can never hold)
        let mut fired: Vec<PageId> = Vec::new();
        for t in &page.target_rules {
            if self.slice.live(t.reads.qid) && self.target_holds(t, &ev, &page.name, spans)? {
                fired.push(t.target);
            }
        }
        fired.dedup();
        let vt = match fired.as_slice() {
            [one] => *one,
            _ => cfg.page, // zero or several: no transition occurs
        };

        // 2) state update with insert/delete conflict = no-op, over C only
        let mut state: BTreeSet<(wave_relalg::RelId, Tuple)> = cfg.state.iter().cloned().collect();
        if self.slice.has_live_delete(cfg.page.index()) {
            let mut inserts: BTreeSet<(wave_relalg::RelId, Tuple)> = BTreeSet::new();
            let mut deletes: BTreeSet<(wave_relalg::RelId, Tuple)> = BTreeSet::new();
            for rule in &page.state_rules {
                if !self.slice.live(rule.reads.qid) {
                    continue; // statically dead: derives nothing
                }
                if !self.visibility.state_observable(rule.head) {
                    continue; // write-only state: nothing can read it
                }
                let tuples = self.run_rule(rule, &ev, &page.name, spans)?;
                let sink = if rule.insert { &mut inserts } else { &mut deletes };
                for t in tuples {
                    if self.over_c(&t) || !rule.insert {
                        sink.insert((rule.head, t));
                    }
                }
            }
            for f in inserts.iter() {
                if !deletes.contains(f) {
                    state.insert(f.clone());
                }
            }
            for f in deletes.iter() {
                if !inserts.contains(f) {
                    state.remove(f);
                }
            }
        } else {
            // monotone fast path: no live delete rule on this page, so no
            // tuple can leave the state and no insert/delete conflict can
            // arise — inserts land directly (same final set as above with
            // an empty delete batch)
            for rule in &page.state_rules {
                if !rule.insert
                    || !self.slice.live(rule.reads.qid)
                    || !self.visibility.state_observable(rule.head)
                {
                    continue;
                }
                for t in self.run_rule(rule, &ev, &page.name, spans)? {
                    if self.over_c(&t) {
                        state.insert((rule.head, t));
                    }
                }
            }
        }
        let st: Facts = state.into_iter().collect();

        // 3) previous input: current input re-keyed to the shadow
        // relations, keeping only shadows observable at the target page
        // (unobservable previous inputs would pointlessly multiply the
        // visited configurations)
        let prev: Facts = cfg
            .input
            .iter()
            .filter_map(|(rel, t)| {
                let shadow = self
                    .spec
                    .schema
                    .lookup(&prev_shadow_name(self.spec.schema.name(*rel)))
                    .expect("shadows declared for every input");
                self.visibility.prev_observable(vt, shadow).then(|| (shadow, t.clone()))
            })
            .collect();

        // 4) extensions × options × input choices
        let prev = prof.time(|p| &mut p.canon_ns, || canonicalize(prev));
        self.expand_page(vt, prev, st, prof, tracer, spans)
    }

    /// Enumerate the configurations entering `page` with the given previous
    /// input and state: every Heuristic-2 extension, every input choice,
    /// with actions computed per choice. `prev` must already be canonical;
    /// `state` is canonical by construction (it comes from a `BTreeSet`).
    fn expand_page<T: SearchTracer, P: SpanSink>(
        &self,
        page_id: PageId,
        prev: Facts,
        state: Facts,
        prof: &mut SearchProfile,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<Vec<PseudoConfig>, SuccError> {
        let page = self.spec.page(page_id);
        let pool = &self.pools[page_id.index()];
        let universe = extension_universe(
            self.spec,
            self.flow,
            self.symbols,
            &self.c_values,
            page_id,
            pool,
            &prev,
            self.pruning,
            self.heuristic2,
        )?;
        // shared across every successor of this expansion: each variant
        // clones the Arc, not the facts
        let prev: SharedFacts = Arc::new(prev);
        let state: SharedFacts = Arc::new(state);
        let mut result = Vec::new();
        for ext in universe.variants() {
            let shell = PseudoConfig {
                page: page_id,
                ext: Arc::new(ext),
                input: no_facts(),
                prev: Arc::clone(&prev),
                state: Arc::clone(&state),
                actions: no_facts(),
            };
            let ev = EvalState::new(self, &shell);

            // options per input relation; choice lists per input
            let mut choice_lists: Vec<(wave_relalg::RelId, Vec<Option<Tuple>>)> = Vec::new();
            for &input in &page.inputs {
                let mut opts: Vec<Option<Tuple>> = vec![None];
                match self.spec.schema.kind(input) {
                    RelKind::Input => {
                        let mut seen = Relation::empty(self.spec.schema.arity(input));
                        for rule in &page.option_rules {
                            if rule.head != input || !self.slice.live(rule.reads.qid) {
                                continue;
                            }
                            for t in self.run_rule(rule, &ev, &page.name, spans)? {
                                if seen.insert(t.clone()) {
                                    opts.push(Some(t));
                                }
                            }
                        }
                    }
                    RelKind::InputConstant => {
                        // text input: the page's fresh witness plus the
                        // constants the field is compared against
                        let mut vals: BTreeSet<Value> = pool
                            .input_consts
                            .iter()
                            .filter(|(r, _)| *r == input)
                            .map(|&(_, v)| v)
                            .collect();
                        let name = self.spec.schema.name(input);
                        vals.extend(
                            self.flow
                                .consts(name, 0)
                                .filter_map(|c| self.symbols.lookup_constant(c))
                                .filter(|v| self.c_values.contains(v)),
                        );
                        opts.extend(vals.into_iter().map(|v| Some(Tuple::from([v]))));
                    }
                    _ => unreachable!("page inputs are input relations"),
                }
                choice_lists.push((input, opts));
            }

            if T::ENABLED {
                // the empty choice is an option too, so `choices` (the
                // product of the per-input option counts) is exactly the
                // number of successors this extension contributes
                tracer.event(TraceEvent::Options {
                    page: page_id.index() as u32,
                    options: choice_lists.iter().map(|(_, o)| o.len() as u32 - 1).sum(),
                    choices: choice_lists.iter().map(|(_, o)| o.len() as u64).product(),
                });
            }

            // cartesian product of choices
            let mut idx = vec![0usize; choice_lists.len()];
            loop {
                let input: Facts = prof.time(
                    |p| &mut p.canon_ns,
                    || {
                        canonicalize(
                            choice_lists
                                .iter()
                                .zip(&idx)
                                .filter_map(|((rel, opts), &i)| opts[i].clone().map(|t| (*rel, t)))
                                .collect(),
                        )
                    },
                );
                let mut cfg = shell.clone();
                cfg.input = Arc::new(input);
                // actions for this choice, kept over C — only worth
                // materializing when the page has property-visible actions
                let visible_actions: Vec<&CompiledRule> = page
                    .action_rules
                    .iter()
                    .filter(|r| self.slice.live(r.reads.qid))
                    .filter(|r| self.visibility.action_observable(r.head))
                    .collect();
                if !visible_actions.is_empty() {
                    let mut actions: BTreeSet<(wave_relalg::RelId, Tuple)> = BTreeSet::new();
                    {
                        let ev2 = EvalState::new(self, &cfg);
                        for rule in visible_actions {
                            for t in self.run_rule(rule, &ev2, &page.name, spans)? {
                                if self.over_c(&t) {
                                    actions.insert((rule.head, t));
                                }
                            }
                        }
                    }
                    cfg.actions = Arc::new(actions.into_iter().collect());
                }
                result.push(cfg);

                // odometer
                let mut pos = choice_lists.len();
                let mut done = true;
                while pos > 0 {
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < choice_lists[pos].1.len() {
                        done = false;
                        break;
                    }
                    idx[pos] = 0;
                }
                if done {
                    break;
                }
            }
        }
        Ok(result)
    }
}
