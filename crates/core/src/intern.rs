//! The hash-consing pseudoconfiguration store.
//!
//! The `ndfs-pseudo` search revisits the same configurations under many
//! automaton states, and `succP` regenerates the same fact sections over
//! and over (every successor of one expansion shares its state and
//! previous-input sections; different expansions regenerate equal ones).
//! The seed implementation paid for this twice: every visit re-serialized
//! the full configuration to a byte key, and every stored configuration
//! deep-cloned its facts.
//!
//! [`ConfigStore`] interns instead:
//!
//! * tuples hash-cons through a [`TupleInterner`], so equal tuples share
//!   one allocation workspace-wide within the store,
//! * canonical fact lists intern to a dense [`FactsId`] (`u32`), the
//!   canonical `Arc<Facts>` is stored once,
//! * a configuration interns to a dense [`ConfigId`] keyed by its
//!   *parts* — `(page, ext id, input id, prev id, state id, actions id)`
//!   — a 24-byte struct, so config-level lookups after the sections are
//!   interned never re-hash tuple data.
//!
//! Interning is injective on canonical configurations (facts ids are
//! content-unique, the parts key is content-unique), so `ConfigId`
//! equality *is* configuration equality and the NDFS visit set, successor
//! cache, and Büchi-product pairs can be keyed by `(u32, u32)` instead of
//! owned byte vectors. Stores are per-work-unit and thread-local; ids
//! from different stores are not comparable.

use crate::config::{Facts, PseudoConfig, SharedFacts};
use std::collections::HashMap;
use std::sync::Arc;
use wave_relalg::TupleInterner;
use wave_spec::PageId;

/// Dense id of an interned canonical fact list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactsId(pub u32);

/// Dense id of an interned pseudoconfiguration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(pub u32);

/// The parts key of an interned configuration: page + section ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ConfigParts {
    page: PageId,
    ext: FactsId,
    input: FactsId,
    prev: FactsId,
    state: FactsId,
    actions: FactsId,
}

/// Interner statistics (fed into the search profiler).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Config interns that found an existing id.
    pub config_hits: u64,
    /// Configs stored for the first time.
    pub config_misses: u64,
    /// Facts-section interns that found an existing id.
    pub facts_hits: u64,
    /// Facts sections stored for the first time.
    pub facts_misses: u64,
}

/// The hash-consing arena for pseudoconfigurations and their parts.
#[derive(Debug, Default)]
pub struct ConfigStore {
    tuples: TupleInterner,
    /// Canonical storage per `FactsId`.
    facts: Vec<SharedFacts>,
    facts_ids: HashMap<SharedFacts, FactsId>,
    /// Canonical parts per `ConfigId` (configs rebuild from these).
    configs: Vec<ConfigParts>,
    config_ids: HashMap<ConfigParts, ConfigId>,
    stats: InternStats,
}

impl ConfigStore {
    pub fn new() -> ConfigStore {
        ConfigStore::default()
    }

    /// Intern one canonical fact list. Equal lists get equal ids; the
    /// first occurrence is stored with its tuples hash-consed.
    pub fn intern_facts(&mut self, facts: &SharedFacts) -> FactsId {
        if let Some(&id) = self.facts_ids.get(facts) {
            self.stats.facts_hits += 1;
            return id;
        }
        self.stats.facts_misses += 1;
        // first sighting: share tuple storage through the interner
        let canonical: SharedFacts = Arc::new(
            facts.iter().map(|(rel, t)| (*rel, self.tuples.intern(t.clone()))).collect::<Facts>(),
        );
        let id = FactsId(u32::try_from(self.facts.len()).expect("facts arena overflow"));
        self.facts.push(Arc::clone(&canonical));
        self.facts_ids.insert(canonical, id);
        id
    }

    /// Intern a configuration, returning its id. The sections are
    /// interned first, so equal configurations — however they were
    /// produced — map to the same id.
    pub fn intern(&mut self, cfg: &PseudoConfig) -> ConfigId {
        let parts = ConfigParts {
            page: cfg.page,
            ext: self.intern_facts(&cfg.ext),
            input: self.intern_facts(&cfg.input),
            prev: self.intern_facts(&cfg.prev),
            state: self.intern_facts(&cfg.state),
            actions: self.intern_facts(&cfg.actions),
        };
        if let Some(&id) = self.config_ids.get(&parts) {
            self.stats.config_hits += 1;
            return id;
        }
        self.stats.config_misses += 1;
        let id = ConfigId(u32::try_from(self.configs.len()).expect("config arena overflow"));
        self.configs.push(parts);
        self.config_ids.insert(parts, id);
        id
    }

    /// Rebuild the canonical configuration for `id` (six `Arc` bumps —
    /// no fact data is copied).
    pub fn config(&self, id: ConfigId) -> PseudoConfig {
        let parts = &self.configs[id.0 as usize];
        PseudoConfig {
            page: parts.page,
            ext: Arc::clone(&self.facts[parts.ext.0 as usize]),
            input: Arc::clone(&self.facts[parts.input.0 as usize]),
            prev: Arc::clone(&self.facts[parts.prev.0 as usize]),
            state: Arc::clone(&self.facts[parts.state.0 as usize]),
            actions: Arc::clone(&self.facts[parts.actions.0 as usize]),
        }
    }

    /// Number of distinct configurations interned.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when no configuration has been interned.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Number of distinct fact sections interned.
    pub fn facts_len(&self) -> usize {
        self.facts.len()
    }

    /// Interner hit/miss counters.
    pub fn stats(&self) -> InternStats {
        self.stats
    }

    /// Serialize the arena for a checkpoint: fact sections as flat
    /// `(rel, values…)` rows, configs as their parts keys, plus the
    /// hit/miss counters. Ids are dense indices, so the on-disk order
    /// *is* the id assignment and a reload reproduces every `FactsId`
    /// and `ConfigId` exactly — which is what keeps resumed searches
    /// byte-identical to uninterrupted ones.
    pub fn serialize(&self, w: &mut wave_store::ByteWriter) {
        w.u64(self.facts.len() as u64);
        for facts in &self.facts {
            w.u32(facts.len() as u32);
            for (rel, t) in facts.iter() {
                w.u32(rel.0);
                let vals = t.values();
                w.u32(vals.len() as u32);
                for v in vals {
                    w.u32(v.0);
                }
            }
        }
        w.u64(self.configs.len() as u64);
        for p in &self.configs {
            w.u32(p.page.0);
            for id in [p.ext, p.input, p.prev, p.state, p.actions] {
                w.u32(id.0);
            }
        }
        for c in [
            self.stats.config_hits,
            self.stats.config_misses,
            self.stats.facts_hits,
            self.stats.facts_misses,
        ] {
            w.u64(c);
        }
    }

    /// Rebuild an arena from [`ConfigStore::serialize`] output. `None`
    /// on truncation or dangling ids (a corrupt checkpoint).
    pub fn deserialize(r: &mut wave_store::ByteReader<'_>) -> Option<ConfigStore> {
        let mut store = ConfigStore::new();
        let n_facts = r.u64()?;
        for _ in 0..n_facts {
            let rows = r.u32()?;
            let mut facts = Facts::with_capacity(rows as usize);
            for _ in 0..rows {
                let rel = wave_relalg::RelId(r.u32()?);
                let arity = r.u32()?;
                let mut vals = Vec::with_capacity(arity as usize);
                for _ in 0..arity {
                    vals.push(wave_relalg::Value(r.u32()?));
                }
                facts.push((rel, store.tuples.intern(wave_relalg::Tuple::from(vals))));
            }
            let canonical: SharedFacts = Arc::new(facts);
            let id = FactsId(u32::try_from(store.facts.len()).ok()?);
            store.facts.push(Arc::clone(&canonical));
            store.facts_ids.insert(canonical, id);
        }
        let n_configs = r.u64()?;
        for _ in 0..n_configs {
            let page = PageId(r.u32()?);
            let mut ids = [FactsId(0); 5];
            for slot in &mut ids {
                let id = r.u32()?;
                if id as usize >= store.facts.len() {
                    return None; // dangling section id
                }
                *slot = FactsId(id);
            }
            let parts = ConfigParts {
                page,
                ext: ids[0],
                input: ids[1],
                prev: ids[2],
                state: ids[3],
                actions: ids[4],
            };
            let id = ConfigId(u32::try_from(store.configs.len()).ok()?);
            store.configs.push(parts);
            store.config_ids.insert(parts, id);
        }
        store.stats = InternStats {
            config_hits: r.u64()?,
            config_misses: r.u64()?,
            facts_hits: r.u64()?,
            facts_misses: r.u64()?,
        };
        Some(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::no_facts;
    use wave_relalg::{RelId, Tuple, Value};

    fn facts(vals: &[u32]) -> SharedFacts {
        Arc::new(vals.iter().map(|&v| (RelId(0), Tuple::from([Value(v)]))).collect::<Facts>())
    }

    fn cfg(page: u32, state: SharedFacts) -> PseudoConfig {
        let mut c = PseudoConfig::initial(PageId(page));
        c.state = state;
        c
    }

    #[test]
    fn equal_configs_same_id() {
        let mut store = ConfigStore::new();
        let a = store.intern(&cfg(0, facts(&[1, 2])));
        let b = store.intern(&cfg(0, facts(&[1, 2])));
        let c = store.intern(&cfg(0, facts(&[1, 3])));
        let d = store.intern(&cfg(1, facts(&[1, 2])));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(store.len(), 3);
        assert_eq!(store.stats().config_hits, 1);
        assert_eq!(store.stats().config_misses, 3);
    }

    #[test]
    fn sections_are_shared_across_configs() {
        let mut store = ConfigStore::new();
        let mut a = cfg(0, facts(&[7]));
        a.prev = facts(&[9]);
        let mut b = cfg(1, facts(&[7]));
        b.prev = facts(&[9]);
        store.intern(&a);
        store.intern(&b);
        // 2 distinct non-empty sections + the empty section
        assert_eq!(store.facts_len(), 3);
        let ra = store.config(ConfigId(0));
        let rb = store.config(ConfigId(1));
        assert!(Arc::ptr_eq(&ra.state, &rb.state), "equal sections hash-cons");
        assert!(Arc::ptr_eq(&ra.prev, &rb.prev));
    }

    #[test]
    fn rebuilt_configs_are_structurally_equal() {
        let mut store = ConfigStore::new();
        let original = cfg(2, facts(&[4, 5]));
        let id = store.intern(&original);
        assert_eq!(store.config(id), original);
        // and interning the rebuild is a pure hit
        let rebuilt = store.config(id);
        assert_eq!(store.intern(&rebuilt), id);
    }

    #[test]
    fn empty_sections_intern_once() {
        let mut store = ConfigStore::new();
        store.intern(&cfg(0, no_facts()));
        store.intern(&cfg(1, no_facts()));
        assert_eq!(store.facts_len(), 1, "one empty section for all five slots");
    }

    #[test]
    fn serialize_round_trips_ids_and_stats() {
        let mut store = ConfigStore::new();
        let a = store.intern(&cfg(0, facts(&[1, 2])));
        let b = store.intern(&cfg(1, facts(&[3])));
        store.intern(&cfg(0, facts(&[1, 2]))); // a hit, for the counters
        let mut w = wave_store::ByteWriter::new();
        store.serialize(&mut w);
        let buf = w.into_inner();
        let mut r = wave_store::ByteReader::new(&buf);
        let mut loaded = ConfigStore::deserialize(&mut r).expect("round trip");
        assert!(r.is_empty());
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.facts_len(), store.facts_len());
        assert_eq!(loaded.stats(), store.stats());
        // the dense id assignment is reproduced exactly
        assert_eq!(loaded.config(a), store.config(a));
        assert_eq!(loaded.config(b), store.config(b));
        assert_eq!(loaded.intern(&cfg(0, facts(&[1, 2]))), a, "reload preserves ids");
        assert_eq!(loaded.intern(&cfg(1, facts(&[3]))), b);
        // truncated payloads are rejected, not misread
        let mut short = wave_store::ByteReader::new(&buf[..buf.len() - 4]);
        assert!(ConfigStore::deserialize(&mut short).is_none());
    }

    #[test]
    fn section_position_still_distinguishes() {
        // same fact list in ext vs state must produce different configs
        let mut store = ConfigStore::new();
        let mut a = PseudoConfig::initial(PageId(0));
        a.ext = facts(&[1]);
        let mut b = PseudoConfig::initial(PageId(0));
        b.state = facts(&[1]);
        assert_ne!(store.intern(&a), store.intern(&b));
    }
}
