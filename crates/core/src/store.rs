//! State-store backends for the nested depth-first search.
//!
//! The NDFS needs three things from its state representation: a
//! config-level key for the successor cache, a `(config, automaton
//! state)` pair key for the visited set, and mark/membership operations
//! on that set. [`StateStore`] abstracts them so the search is generic
//! over two implementations:
//!
//! * [`InternedStore`] — the hash-consed arena of [`crate::intern`]: a
//!   configuration interns to a `u32` [`ConfigId`] once, pair keys are
//!   packed `u64`s, and the visited set is the flat [`VisitTable`]. This
//!   is the default.
//! * [`ByteStore`] — the seed representation, kept as the measured
//!   ablation baseline ([`VerifyOptions::state_store`],
//!   `wave check --byte-keys`, and the `state_interning` bench): every
//!   intern re-serializes the configuration to a canonical byte vector
//!   and the visited set is the paper's byte [`VisitTrie`].
//!
//! Both backends return a *canonical* configuration from
//! [`StateStore::intern`]; for the interned store this is the
//! hash-consed copy whose sections are shared `Arc`s, so callers that
//! retain it (path steps, successor caches) deduplicate storage for
//! free. Verdicts and traversal order are independent of the backend;
//! only speed and memory differ.
//!
//! [`VerifyOptions::state_store`]: crate::verifier::VerifyOptions

use crate::config::PseudoConfig;
use crate::intern::{ConfigId, ConfigStore};
use crate::trie::{Phase, VisitTable, VisitTrie};
use std::hash::Hash;

/// Which state-store backend a search uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StateStoreKind {
    /// Hash-consed interned ids (the fast path).
    #[default]
    Interned,
    /// Canonical byte keys in a visit trie (the seed baseline).
    ByteKeys,
}

/// The state representation one NDFS runs over. One store serves all
/// cores of one work unit; [`StateStore::clear_visits`] resets the
/// visited set between cores while keys stay valid for the store's
/// lifetime.
pub trait StateStore {
    /// Config-level key (successor-cache key).
    type CKey: Clone + Eq + Hash;
    /// `(config, automaton state)` pair key (visited-set key).
    type PKey: Clone + Eq;

    /// Key a configuration, returning its canonical form alongside.
    fn intern(&mut self, cfg: &PseudoConfig) -> (Self::CKey, PseudoConfig);
    /// The pair key of `(config, automaton state)`.
    fn pair(&self, ck: &Self::CKey, auto_state: usize) -> Self::PKey;
    /// Mark a pair visited in `phase`; true when it already was.
    fn mark(&mut self, pk: &Self::PKey, phase: Phase) -> bool;
    /// Is a pair marked for `phase`?
    fn is_marked(&self, pk: &Self::PKey, phase: Phase) -> bool;
    /// Reset the visited set (between cores), keeping the historic max.
    fn clear_visits(&mut self);
    /// Maximum number of visited pairs ever resident (the paper's
    /// "Max. trie size" column).
    fn max_visited(&self) -> usize;
    /// Interner (hits, misses) counters since construction.
    fn intern_counters(&self) -> (u64, u64);
}

/// Hash-consed backend: [`ConfigStore`] arena + [`VisitTable`].
#[derive(Debug, Default)]
pub struct InternedStore {
    store: ConfigStore,
    visits: VisitTable,
}

impl InternedStore {
    pub fn new() -> InternedStore {
        InternedStore::default()
    }

    /// The underlying arena (diagnostics and tests).
    pub fn arena(&self) -> &ConfigStore {
        &self.store
    }
}

impl StateStore for InternedStore {
    type CKey = ConfigId;
    type PKey = u64;

    fn intern(&mut self, cfg: &PseudoConfig) -> (ConfigId, PseudoConfig) {
        let id = self.store.intern(cfg);
        (id, self.store.config(id))
    }

    fn pair(&self, ck: &ConfigId, auto_state: usize) -> u64 {
        VisitTable::key(*ck, auto_state)
    }

    fn mark(&mut self, pk: &u64, phase: Phase) -> bool {
        self.visits.mark(*pk, phase)
    }

    fn is_marked(&self, pk: &u64, phase: Phase) -> bool {
        self.visits.is_marked(*pk, phase)
    }

    fn clear_visits(&mut self) {
        self.visits.clear();
    }

    fn max_visited(&self) -> usize {
        self.visits.max_len()
    }

    fn intern_counters(&self) -> (u64, u64) {
        let s = self.store.stats();
        (s.config_hits, s.config_misses)
    }
}

/// Byte-key backend: canonical encodings + the paper's [`VisitTrie`].
#[derive(Debug, Default)]
pub struct ByteStore {
    trie: VisitTrie,
    hits: u64,
    misses: u64,
}

impl ByteStore {
    pub fn new() -> ByteStore {
        ByteStore::default()
    }
}

impl StateStore for ByteStore {
    type CKey = Vec<u8>;
    type PKey = Vec<u8>;

    fn intern(&mut self, cfg: &PseudoConfig) -> (Vec<u8>, PseudoConfig) {
        // every call serializes — exactly the cost profile of the seed
        // implementation this backend exists to measure against
        let mut key = Vec::with_capacity(64);
        cfg.encode(&mut key);
        self.misses += 1;
        (key, cfg.clone())
    }

    fn pair(&self, ck: &Vec<u8>, auto_state: usize) -> Vec<u8> {
        let mut key = Vec::with_capacity(4 + ck.len());
        key.extend_from_slice(&(auto_state as u32).to_le_bytes());
        key.extend_from_slice(ck);
        key
    }

    fn mark(&mut self, pk: &Vec<u8>, phase: Phase) -> bool {
        self.trie.mark(pk, phase)
    }

    fn is_marked(&self, pk: &Vec<u8>, phase: Phase) -> bool {
        self.trie.is_marked(pk, phase)
    }

    fn clear_visits(&mut self) {
        self.trie.clear();
    }

    fn max_visited(&self) -> usize {
        self.trie.max_len()
    }

    fn intern_counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::no_facts;
    use std::sync::Arc;
    use wave_relalg::{RelId, Tuple, Value};
    use wave_spec::PageId;

    fn cfg(page: u32, vals: &[u32]) -> PseudoConfig {
        let mut c = PseudoConfig::initial(PageId(page));
        c.state =
            Arc::new(vals.iter().map(|&v| (RelId(0), Tuple::from([Value(v)]))).collect::<Vec<_>>());
        c
    }

    /// Both backends implement the same visited-set semantics.
    fn exercise<S: StateStore>(mut s: S)
    where
        S::CKey: std::fmt::Debug,
        S::PKey: std::fmt::Debug,
    {
        let (ka, ca) = s.intern(&cfg(0, &[1]));
        let (kb, _) = s.intern(&cfg(0, &[2]));
        assert_eq!(ca, cfg(0, &[1]), "canonical config is structurally equal");
        let (ka2, _) = s.intern(&cfg(0, &[1]));
        assert_eq!(ka, ka2, "equal configs key equally");
        assert_ne!(ka, kb);

        let pa0 = s.pair(&ka, 0);
        let pa1 = s.pair(&ka, 1);
        let pb0 = s.pair(&kb, 0);
        assert_ne!(pa0, pa1);
        assert_ne!(pa0, pb0);

        assert!(!s.mark(&pa0, Phase::Stick));
        assert!(s.mark(&pa0, Phase::Stick));
        assert!(!s.is_marked(&pa0, Phase::Candy));
        assert!(!s.mark(&pa1, Phase::Stick));
        assert_eq!(s.max_visited(), 2);
        s.clear_visits();
        assert!(!s.is_marked(&pa0, Phase::Stick));
        assert!(!s.mark(&pa0, Phase::Stick), "keys survive clear_visits");
        assert_eq!(s.max_visited(), 2, "historic max survives clear");
    }

    #[test]
    fn interned_store_semantics() {
        exercise(InternedStore::new());
    }

    #[test]
    fn byte_store_semantics() {
        exercise(ByteStore::new());
    }

    #[test]
    fn interned_store_dedups_storage() {
        let mut s = InternedStore::new();
        let (_, a) = s.intern(&cfg(0, &[5]));
        let (_, b) = s.intern(&cfg(1, &[5]));
        assert!(Arc::ptr_eq(&a.state, &b.state), "hash-consed sections share");
        assert!(Arc::ptr_eq(&a.ext, &no_facts()) || a.ext.is_empty());
        let (hits, misses) = s.intern_counters();
        assert_eq!((hits, misses), (0, 2));
        s.intern(&cfg(0, &[5]));
        assert_eq!(s.intern_counters(), (1, 2));
    }
}
