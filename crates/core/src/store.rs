//! State-store backends for the nested depth-first search.
//!
//! The NDFS needs three things from its state representation: a
//! config-level key for the successor cache, a `(config, automaton
//! state)` pair key for the visited set, and mark/membership operations
//! on that set. [`StateStore`] abstracts them so the search is generic
//! over two implementations:
//!
//! * [`InternedStore`] — the hash-consed arena of [`crate::intern`]: a
//!   configuration interns to a `u32` [`ConfigId`] once, pair keys are
//!   packed `u64`s, and the visited set is the flat [`VisitTable`]. This
//!   is the default.
//! * [`ByteStore`] — the seed representation, kept as the measured
//!   ablation baseline ([`VerifyOptions::state_store`],
//!   `wave check --byte-keys`, and the `state_interning` bench): every
//!   intern re-serializes the configuration to a canonical byte vector
//!   and the visited set is the paper's byte [`VisitTrie`].
//!
//! * [`TieredStore`] — the out-of-core backend: interned ids like
//!   [`InternedStore`], but the visited set is `wave-store`'s
//!   [`TieredVisits`] (Bloom front → clock hot tier → sorted spill
//!   segments) under a configurable byte budget, so searches whose
//!   visited set outgrows RAM spill to disk instead of dying. See
//!   DESIGN.md §10.
//!
//! Both in-memory backends (and the tiered one) return a *canonical*
//! configuration from [`StateStore::intern`]; for the interned store
//! this is the hash-consed copy whose sections are shared `Arc`s, so
//! callers that retain it (path steps, successor caches) deduplicate
//! storage for free. Verdicts and traversal order are independent of
//! the backend; only speed and memory differ.
//!
//! [`VerifyOptions::state_store`]: crate::verifier::VerifyOptions

use crate::config::PseudoConfig;
use crate::intern::{ConfigId, ConfigStore};
use crate::trie::{Phase, VisitTable, VisitTrie};
use std::hash::Hash;
use std::path::PathBuf;
use wave_store::{ByteReader, ByteWriter, TierConfig, TierCounters, TieredVisits};

/// Sizing knobs of the tiered backend (a subset of
/// [`wave_store::TierConfig`] — the segment-merge fanout stays an
/// internal constant so verdict-relevant options stay small).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierParams {
    /// Hot-tier byte budget.
    pub mem_bytes: u64,
    /// Parent directory for spill files; `None` = system temp dir.
    /// Each store spills into its own private subdirectory underneath,
    /// removed on drop — concurrent searches may share one parent.
    pub spill_dir: Option<PathBuf>,
}

impl Default for TierParams {
    fn default() -> TierParams {
        TierParams { mem_bytes: 64 << 20, spill_dir: None }
    }
}

/// Which state-store backend a search uses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum StateStoreKind {
    /// Hash-consed interned ids (the fast path).
    #[default]
    Interned,
    /// Canonical byte keys in a visit trie (the seed baseline).
    ByteKeys,
    /// Interned ids with the tiered out-of-core visited set.
    Tiered(TierParams),
}

/// The state representation one NDFS runs over. One store serves all
/// cores of one work unit; [`StateStore::clear_visits`] resets the
/// visited set between cores while keys stay valid for the store's
/// lifetime.
pub trait StateStore {
    /// Config-level key (successor-cache key).
    type CKey: Clone + Eq + Hash;
    /// `(config, automaton state)` pair key (visited-set key).
    type PKey: Clone + Eq;

    /// Key a configuration, returning its canonical form alongside.
    fn intern(&mut self, cfg: &PseudoConfig) -> (Self::CKey, PseudoConfig);
    /// The pair key of `(config, automaton state)`.
    fn pair(&self, ck: &Self::CKey, auto_state: usize) -> Self::PKey;
    /// Mark a pair visited in `phase`; true when it already was.
    fn mark(&mut self, pk: &Self::PKey, phase: Phase) -> bool;
    /// Is a pair marked for `phase`?
    fn is_marked(&self, pk: &Self::PKey, phase: Phase) -> bool;
    /// Reset the visited set (between cores), keeping the historic max.
    fn clear_visits(&mut self);
    /// Maximum number of *distinct* visited pairs between clears (the
    /// paper's "Max. trie size" column) — resident and spilled pairs
    /// together; see [`StateStore::visited_breakdown`] for the split.
    fn max_visited(&self) -> usize;
    /// `(max resident, max spilled)` high-water marks. In-memory
    /// backends keep everything resident; the tiered backend reports
    /// its hot-tier occupancy peak and on-disk entry peak separately
    /// (the spilled count includes duplicate copies across segments,
    /// so the two need not sum to [`StateStore::max_visited`]).
    fn visited_breakdown(&self) -> (usize, usize) {
        (self.max_visited(), 0)
    }
    /// Spill/compaction/Bloom event counters (all zero for in-memory
    /// backends).
    fn tier_counters(&self) -> TierCounters {
        TierCounters::default()
    }
    /// Wall time spent in (segment writes, merge compactions), ns.
    /// Zero for in-memory backends; profiler diagnostics only, not
    /// part of the deterministic counter contract.
    fn spill_timers(&self) -> (u64, u64) {
        (0, 0)
    }
    /// Interner (hits, misses) counters since construction.
    fn intern_counters(&self) -> (u64, u64);
    /// Serialize the durable store state (the intern arena, for
    /// backends that have one) into a checkpoint payload. Visited
    /// marks are *not* part of it: checkpoints happen at core
    /// boundaries, where the visited set is empty by construction.
    fn save_state(&mut self, _w: &mut ByteWriter) {}
    /// Restore [`StateStore::save_state`] output; false on a corrupt
    /// payload. Must be called on a freshly built store.
    fn load_state(&mut self, _r: &mut ByteReader<'_>) -> bool {
        true
    }
}

/// Hash-consed backend: [`ConfigStore`] arena + [`VisitTable`].
#[derive(Debug, Default)]
pub struct InternedStore {
    store: ConfigStore,
    visits: VisitTable,
}

impl InternedStore {
    pub fn new() -> InternedStore {
        InternedStore::default()
    }

    /// The underlying arena (diagnostics and tests).
    pub fn arena(&self) -> &ConfigStore {
        &self.store
    }
}

impl StateStore for InternedStore {
    type CKey = ConfigId;
    type PKey = u64;

    fn intern(&mut self, cfg: &PseudoConfig) -> (ConfigId, PseudoConfig) {
        let id = self.store.intern(cfg);
        (id, self.store.config(id))
    }

    fn pair(&self, ck: &ConfigId, auto_state: usize) -> u64 {
        VisitTable::key(*ck, auto_state)
    }

    fn mark(&mut self, pk: &u64, phase: Phase) -> bool {
        self.visits.mark(*pk, phase)
    }

    fn is_marked(&self, pk: &u64, phase: Phase) -> bool {
        self.visits.is_marked(*pk, phase)
    }

    fn clear_visits(&mut self) {
        self.visits.clear();
    }

    fn max_visited(&self) -> usize {
        self.visits.max_len()
    }

    fn intern_counters(&self) -> (u64, u64) {
        let s = self.store.stats();
        (s.config_hits, s.config_misses)
    }

    fn save_state(&mut self, w: &mut ByteWriter) {
        self.store.serialize(w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> bool {
        match ConfigStore::deserialize(r) {
            Some(store) => {
                self.store = store;
                true
            }
            None => false,
        }
    }
}

/// Byte-key backend: canonical encodings + the paper's [`VisitTrie`].
#[derive(Debug, Default)]
pub struct ByteStore {
    trie: VisitTrie,
    hits: u64,
    misses: u64,
}

impl ByteStore {
    pub fn new() -> ByteStore {
        ByteStore::default()
    }
}

impl StateStore for ByteStore {
    type CKey = Vec<u8>;
    type PKey = Vec<u8>;

    fn intern(&mut self, cfg: &PseudoConfig) -> (Vec<u8>, PseudoConfig) {
        // every call serializes — exactly the cost profile of the seed
        // implementation this backend exists to measure against
        let mut key = Vec::with_capacity(64);
        cfg.encode(&mut key);
        self.misses += 1;
        (key, cfg.clone())
    }

    fn pair(&self, ck: &Vec<u8>, auto_state: usize) -> Vec<u8> {
        let mut key = Vec::with_capacity(4 + ck.len());
        key.extend_from_slice(&(auto_state as u32).to_le_bytes());
        key.extend_from_slice(ck);
        key
    }

    fn mark(&mut self, pk: &Vec<u8>, phase: Phase) -> bool {
        self.trie.mark(pk, phase)
    }

    fn is_marked(&self, pk: &Vec<u8>, phase: Phase) -> bool {
        self.trie.is_marked(pk, phase)
    }

    fn clear_visits(&mut self) {
        self.trie.clear();
    }

    fn max_visited(&self) -> usize {
        self.trie.max_len()
    }

    fn intern_counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Out-of-core backend: the [`InternedStore`] arena in front of
/// `wave-store`'s tiered visited set. Keys and traversal order are
/// identical to [`InternedStore`] — only where the marks live differs —
/// so verdicts and the deterministic stats columns are byte-identical
/// across the two (pinned by `tests/store_tiered.rs`).
#[derive(Debug)]
pub struct TieredStore {
    store: ConfigStore,
    visits: TieredVisits,
}

impl TieredStore {
    /// Build from the option-level sizing knobs. Panics when the spill
    /// directory cannot be created — a store that cannot spill cannot
    /// honor its memory budget.
    pub fn new(params: &TierParams) -> TieredStore {
        let config = TierConfig {
            mem_bytes: usize::try_from(params.mem_bytes).unwrap_or(usize::MAX),
            spill_dir: params.spill_dir.clone(),
            ..TierConfig::default()
        };
        let visits = TieredVisits::new(config)
            .unwrap_or_else(|e| panic!("tiered store: cannot create spill dir: {e}"));
        TieredStore { store: ConfigStore::new(), visits }
    }

    /// The underlying arena (diagnostics and tests).
    pub fn arena(&self) -> &ConfigStore {
        &self.store
    }

    /// The tiered visited set (diagnostics and tests).
    pub fn visits(&self) -> &TieredVisits {
        &self.visits
    }
}

impl StateStore for TieredStore {
    type CKey = ConfigId;
    type PKey = u64;

    fn intern(&mut self, cfg: &PseudoConfig) -> (ConfigId, PseudoConfig) {
        let id = self.store.intern(cfg);
        (id, self.store.config(id))
    }

    fn pair(&self, ck: &ConfigId, auto_state: usize) -> u64 {
        VisitTable::key(*ck, auto_state)
    }

    fn mark(&mut self, pk: &u64, phase: Phase) -> bool {
        self.visits.mark(*pk, phase.mask())
    }

    fn is_marked(&self, pk: &u64, phase: Phase) -> bool {
        self.visits.is_marked(*pk, phase.mask())
    }

    fn clear_visits(&mut self) {
        self.visits.clear();
    }

    fn max_visited(&self) -> usize {
        self.visits.max_distinct()
    }

    fn visited_breakdown(&self) -> (usize, usize) {
        (self.visits.max_resident(), self.visits.max_spilled())
    }

    fn tier_counters(&self) -> TierCounters {
        self.visits.counters()
    }

    fn spill_timers(&self) -> (u64, u64) {
        self.visits.spill_timers()
    }

    fn intern_counters(&self) -> (u64, u64) {
        let s = self.store.stats();
        (s.config_hits, s.config_misses)
    }

    fn save_state(&mut self, w: &mut ByteWriter) {
        self.store.serialize(w);
    }

    fn load_state(&mut self, r: &mut ByteReader<'_>) -> bool {
        match ConfigStore::deserialize(r) {
            Some(store) => {
                self.store = store;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::no_facts;
    use std::sync::Arc;
    use wave_relalg::{RelId, Tuple, Value};
    use wave_spec::PageId;

    fn cfg(page: u32, vals: &[u32]) -> PseudoConfig {
        let mut c = PseudoConfig::initial(PageId(page));
        c.state =
            Arc::new(vals.iter().map(|&v| (RelId(0), Tuple::from([Value(v)]))).collect::<Vec<_>>());
        c
    }

    /// Both backends implement the same visited-set semantics.
    fn exercise<S: StateStore>(mut s: S)
    where
        S::CKey: std::fmt::Debug,
        S::PKey: std::fmt::Debug,
    {
        let (ka, ca) = s.intern(&cfg(0, &[1]));
        let (kb, _) = s.intern(&cfg(0, &[2]));
        assert_eq!(ca, cfg(0, &[1]), "canonical config is structurally equal");
        let (ka2, _) = s.intern(&cfg(0, &[1]));
        assert_eq!(ka, ka2, "equal configs key equally");
        assert_ne!(ka, kb);

        let pa0 = s.pair(&ka, 0);
        let pa1 = s.pair(&ka, 1);
        let pb0 = s.pair(&kb, 0);
        assert_ne!(pa0, pa1);
        assert_ne!(pa0, pb0);

        assert!(!s.mark(&pa0, Phase::Stick));
        assert!(s.mark(&pa0, Phase::Stick));
        assert!(!s.is_marked(&pa0, Phase::Candy));
        assert!(!s.mark(&pa1, Phase::Stick));
        assert_eq!(s.max_visited(), 2);
        s.clear_visits();
        assert!(!s.is_marked(&pa0, Phase::Stick));
        assert!(!s.mark(&pa0, Phase::Stick), "keys survive clear_visits");
        assert_eq!(s.max_visited(), 2, "historic max survives clear");
    }

    #[test]
    fn interned_store_semantics() {
        exercise(InternedStore::new());
    }

    #[test]
    fn byte_store_semantics() {
        exercise(ByteStore::new());
    }

    #[test]
    fn tiered_store_semantics() {
        exercise(TieredStore::new(&TierParams::default()));
        // and again with a budget small enough that everything spills
        exercise(TieredStore::new(&TierParams { mem_bytes: 0, spill_dir: None }));
    }

    #[test]
    fn tiered_breakdown_separates_resident_from_spilled() {
        let mut s = TieredStore::new(&TierParams { mem_bytes: 0, spill_dir: None });
        // 64-slot floor -> 48-entry ceiling; 300 pairs must spill
        let (key, _) = s.intern(&cfg(0, &[1]));
        for auto_state in 0..300 {
            let pk = s.pair(&key, auto_state);
            assert!(!s.mark(&pk, Phase::Stick));
        }
        assert_eq!(s.max_visited(), 300, "distinct count spans both tiers");
        let (resident, spilled) = s.visited_breakdown();
        assert!(resident <= 48, "resident bounded by the budget: {resident}");
        assert!(spilled > 0, "overflow went to disk");
        assert!(s.tier_counters().spill_segments > 0);
        let interned = InternedStore::new();
        assert_eq!(interned.visited_breakdown(), (0, 0), "default breakdown is all-resident");
    }

    #[test]
    fn save_state_round_trips_the_arena() {
        let mut s = TieredStore::new(&TierParams::default());
        let (ka, _) = s.intern(&cfg(0, &[1]));
        let (kb, _) = s.intern(&cfg(1, &[2, 3]));
        let mut w = wave_store::ByteWriter::new();
        s.save_state(&mut w);
        let buf = w.into_inner();

        let mut fresh = TieredStore::new(&TierParams::default());
        assert!(fresh.load_state(&mut wave_store::ByteReader::new(&buf)));
        let (ka2, _) = fresh.intern(&cfg(0, &[1]));
        let (kb2, _) = fresh.intern(&cfg(1, &[2, 3]));
        assert_eq!((ka, kb), (ka2, kb2), "ids survive the round trip");
        assert!(!fresh.load_state(&mut wave_store::ByteReader::new(&buf[..3])), "corrupt payload");

        let mut interned = InternedStore::new();
        interned.intern(&cfg(0, &[9]));
        let mut w = wave_store::ByteWriter::new();
        interned.save_state(&mut w);
        let buf = w.into_inner();
        let mut fresh = InternedStore::new();
        assert!(fresh.load_state(&mut wave_store::ByteReader::new(&buf)));
        assert_eq!(fresh.intern_counters(), interned.intern_counters());
    }

    #[test]
    fn interned_store_dedups_storage() {
        let mut s = InternedStore::new();
        let (_, a) = s.intern(&cfg(0, &[5]));
        let (_, b) = s.intern(&cfg(1, &[5]));
        assert!(Arc::ptr_eq(&a.state, &b.state), "hash-consed sections share");
        assert!(Arc::ptr_eq(&a.ext, &no_facts()) || a.ext.is_empty());
        let (hits, misses) = s.intern_counters();
        assert_eq!((hits, misses), (0, 2));
        s.intern(&cfg(0, &[5]));
        assert_eq!(s.intern_counters(), (1, 2));
    }
}
