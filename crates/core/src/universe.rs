//! Tuple universes and bitmap enumeration for database cores and
//! extensions (Sections 3.2 and 4 of the paper).
//!
//! A *universe* is the list of candidate tuples a core (or a page's
//! extension) may draw from. Subsets are enumerated with the paper's
//! bitmap-counter scheme: treat the candidate list as bit positions,
//! start from the all-zero bitmap and increment until all-ones — thereby
//! generating *only* the instances allowed by the pruning heuristics,
//! directly, without post-filtering.
//!
//! * **Heuristic 1 (cores)** — a core tuple's attribute may only hold a
//!   constant from its dataflow comparison set (restricted to `C`);
//!   attributes compared to nothing admit no tuples at all.
//! * **Heuristic 2 (extensions)** — an extension tuple at page `V` may
//!   additionally hold values of input attributes it is compared to at `V`
//!   (the concrete previous-input values, and the page's fresh witnesses
//!   for current-input comparisons), plus — beyond the paper's two-sentence
//!   formulation — the *option-support* witnesses: tuples instantiating an
//!   option rule's body atoms with the rule's `C_V` values, without which
//!   pages reachable only through option choices would become unreachable
//!   in pseudoruns (see DESIGN.md).

use crate::config::{canonicalize, Facts};
use crate::domain::PagePool;
use std::collections::BTreeSet;
use std::fmt;
use wave_fol::{Atom, Term};
use wave_relalg::{RelId, RelKind, Tuple, Value};
use wave_spec::{CompiledSpec, Dataflow, PageId};

/// Enumeration guard for *subset-enumerated* universes (cores and strict
/// extension candidates): beyond this many candidate tuples the `2^n`
/// enumeration is intractable, and the verifier reports an error instead
/// of silently truncating (soundness first).
pub const MAX_UNIVERSE: usize = 14;

/// Guard for per-option-rule witness blocks, which multiply the extension
/// count linearly (one-of-n choice), not exponentially.
pub const MAX_BLOCKS: usize = 64;

/// How extensions are pruned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtensionPruning {
    /// Exactly the paper's formulation: only attributes compared to
    /// constants or input attributes admit values. (Reproduces the
    /// Example 3.7 count of one extension at page LSP.)
    PaperStrict,
    /// The paper's formulation plus option-support witness tuples
    /// (default; preserves reachability through option choices).
    OptionSupport,
}

/// Universe-size overflow error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UniverseOverflow {
    pub what: &'static str,
    pub size: usize,
}

impl fmt::Display for UniverseOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} universe has {} candidate tuples (limits: {} subset-enumerated, \
             {} per witness rule); the specification/property pair is outside \
             wave's practical fragment",
            self.what, self.size, MAX_UNIVERSE, MAX_BLOCKS
        )
    }
}

impl std::error::Error for UniverseOverflow {}

/// A candidate-tuple list with bitmap subset enumeration.
#[derive(Clone, Debug, Default)]
pub struct Universe {
    /// Candidate facts in canonical order.
    pub candidates: Facts,
}

impl Universe {
    /// Number of candidate tuples.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True when only the empty subset exists.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Number of subsets (`2^len`), as the paper counts cores/extensions.
    pub fn subset_count(&self) -> u64 {
        1u64 << self.candidates.len().min(63)
    }

    /// Enumerate all subsets via the bitmap counter.
    pub fn subsets(&self) -> SubsetIter<'_> {
        SubsetIter { universe: self, next: Some(0) }
    }

    /// Decode one bitmap into its facts.
    pub fn decode(&self, bitmap: u64) -> Facts {
        self.candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| bitmap >> i & 1 == 1)
            .map(|(_, f)| f.clone())
            .collect()
    }
}

/// Iterator over subsets in bitmap-counter order (all-zero to all-one).
pub struct SubsetIter<'a> {
    universe: &'a Universe,
    next: Option<u64>,
}

impl Iterator for SubsetIter<'_> {
    type Item = Facts;

    fn next(&mut self) -> Option<Facts> {
        let bitmap = self.next?;
        let facts = self.universe.decode(bitmap);
        let last = self.universe.subset_count() - 1;
        self.next = if bitmap == last { None } else { Some(bitmap + 1) };
        Some(facts)
    }
}

/// Build the Heuristic-1 core universe: for every database relation, the
/// product of per-attribute comparison-constant sets (restricted to `C`).
/// With `heuristic1 = false` the universe is `C^arity` per relation —
/// usually overflowing, exactly as the paper's Example 3.4 illustrates.
pub fn core_universe(
    spec: &CompiledSpec,
    flow: &Dataflow,
    symbols: &wave_relalg::SymbolTable,
    c_values: &[Value],
    heuristic1: bool,
) -> Result<Universe, UniverseOverflow> {
    let mut candidates: Facts = Vec::new();
    for rel in spec.schema.rels() {
        if spec.schema.kind(rel) != RelKind::Database || spec.schema.name(rel).starts_with("page$")
        {
            continue;
        }
        let arity = spec.schema.arity(rel);
        let name = spec.schema.name(rel);
        let domains: Vec<Vec<Value>> = (0..arity)
            .map(|col| {
                if heuristic1 {
                    flow.consts(name, col)
                        .filter_map(|c| symbols.lookup_constant(c))
                        .filter(|v| c_values.contains(v))
                        .collect()
                } else {
                    c_values.to_vec()
                }
            })
            .collect();
        push_product(rel, &domains, &mut candidates, "core")?;
    }
    Ok(Universe { candidates: canonicalize(candidates) })
}

/// The extension space at a page: independent strict-Heuristic-2
/// candidate tuples (bitmap-enumerated subsets) plus, per option rule, a
/// list of alternative *witness blocks* — joint instantiations of the
/// rule's database atoms, one of which (or none) is included per
/// extension. Blocks keep the enumeration linear in the number of
/// instantiations instead of exponential in the number of witness tuples.
#[derive(Clone, Debug, Default)]
pub struct ExtUniverse {
    /// Independent candidates (the paper's strict Heuristic 2).
    pub strict: Universe,
    /// Per option rule: alternative joint witness blocks.
    pub blocks: Vec<Vec<Facts>>,
}

impl ExtUniverse {
    /// Number of extensions enumerated.
    pub fn variant_count(&self) -> u64 {
        let mut n = self.strict.subset_count();
        for b in &self.blocks {
            n = n.saturating_mul(1 + b.len() as u64);
        }
        n
    }

    /// Enumerate every extension (strict subset × one-or-none block per
    /// rule), canonicalized.
    pub fn variants(&self) -> Vec<Facts> {
        let mut out: Vec<Facts> = self.strict.subsets().collect();
        for blocks in &self.blocks {
            if blocks.is_empty() {
                continue;
            }
            let base = std::mem::take(&mut out);
            for facts in &base {
                out.push(facts.clone());
                for b in blocks {
                    let mut merged = facts.clone();
                    merged.extend(b.iter().cloned());
                    out.push(canonicalize(merged));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Build the Heuristic-2 extension universe for transitions *into* `page`,
/// given the concrete previous-input facts.
#[allow(clippy::too_many_arguments)] // the paper's ext(V) genuinely takes this context
pub fn extension_universe(
    spec: &CompiledSpec,
    flow: &Dataflow,
    symbols: &wave_relalg::SymbolTable,
    c_values: &[Value],
    page: PageId,
    pool: &PagePool,
    prev_input: &Facts,
    pruning: ExtensionPruning,
    heuristic2: bool,
) -> Result<ExtUniverse, UniverseOverflow> {
    let page_name = &spec.page(page).name;
    let mut candidates: Facts = Vec::new();
    // previous-input facts are keyed by the `prev$` shadow relations
    let prev_value = |rel_name: &str, col: usize| -> Option<Value> {
        let id = spec.schema.lookup(&wave_fol::prev_shadow_name(rel_name))?;
        prev_input.iter().find(|(r, _)| *r == id).map(|(_, t)| t.get(col))
    };
    for rel in spec.schema.rels() {
        if spec.schema.kind(rel) != RelKind::Database || spec.schema.name(rel).starts_with("page$")
        {
            continue;
        }
        let arity = spec.schema.arity(rel);
        let name = spec.schema.name(rel).to_owned();
        if !heuristic2 {
            // no pruning: every attribute ranges over C plus the page pool
            let mut dom: Vec<Value> = c_values.to_vec();
            dom.extend(pool.values());
            let domains: Vec<Vec<Value>> = (0..arity).map(|_| dom.clone()).collect();
            push_product(rel, &domains, &mut candidates, "extension")?;
            continue;
        }
        let domains: Vec<Vec<Value>> = (0..arity)
            .map(|col| {
                let mut dom: BTreeSet<Value> = flow
                    .consts(&name, col)
                    .filter_map(|c| symbols.lookup_constant(c))
                    .filter(|v| c_values.contains(v))
                    .collect();
                for (src_rel, src_col, prev) in flow.input_sources(page_name, &name, col) {
                    let Some(src_id) = spec.schema.lookup(src_rel) else { continue };
                    if !spec.schema.kind(src_id).is_input() {
                        continue; // variable sharing with non-input atoms is not an input comparison
                    }
                    if *prev {
                        // the concrete previous-input value, if any
                        dom.extend(prev_value(src_rel, *src_col));
                    } else {
                        // values the current input may take at that column:
                        // pool witnesses feeding it plus its own comparison
                        // constants
                        dom.extend(
                            flow.consts(src_rel, *src_col)
                                .filter_map(|c| symbols.lookup_constant(c))
                                .filter(|v| c_values.contains(v)),
                        );
                        if spec.schema.kind(src_id) == RelKind::InputConstant {
                            dom.extend(
                                pool.input_consts
                                    .iter()
                                    .filter(|(r, _)| *r == src_id)
                                    .map(|&(_, v)| v),
                            );
                        } else {
                            // option-rule head variables at that input column
                            for (ri, rule) in spec.page(page).option_rules.iter().enumerate() {
                                if rule.head == src_id {
                                    if let Some(hv) = rule.head_vars.get(*src_col) {
                                        dom.extend(pool.opt_var(ri, hv));
                                    }
                                }
                            }
                        }
                    }
                }
                dom.into_iter().collect::<Vec<Value>>()
            })
            .collect();
        push_product(rel, &domains, &mut candidates, "extension")?;
    }
    let mut blocks = if pruning == ExtensionPruning::OptionSupport {
        option_support(spec, flow, symbols, c_values, page, pool)?
    } else {
        Vec::new()
    };
    // Tuples entirely over C belong to the *core*, which is fixed for the
    // whole run; letting them float in per-step extensions would make the
    // database appear to change between configurations (the paper's
    // extensions carry only tuples involving the fresh C_V values).
    let over_c = |t: &Tuple| t.values().iter().all(|v| c_values.contains(v));
    candidates.retain(|(_, t)| !over_c(t));
    for rule_blocks in &mut blocks {
        for facts in rule_blocks.iter_mut() {
            facts.retain(|(_, t)| !over_c(t));
        }
        rule_blocks.retain(|facts| !facts.is_empty());
        rule_blocks.sort_unstable();
        rule_blocks.dedup();
    }
    blocks.retain(|b| !b.is_empty());
    Ok(ExtUniverse { strict: Universe { candidates: canonicalize(candidates) }, blocks })
}

/// Option-support witness blocks: for each option rule of the page, the
/// joint instantiations of its database atoms under assignments sending
/// each rule variable to its `C_V` witness — head variables may instead
/// take a constant the corresponding input column is compared to (per the
/// dataflow's copy propagation, this covers properties and rules that
/// compare the chosen option value to a named constant). Without these
/// witnesses, pages reachable only through option choices would be
/// unreachable in pseudoruns (see DESIGN.md).
fn option_support(
    spec: &CompiledSpec,
    flow: &Dataflow,
    symbols: &wave_relalg::SymbolTable,
    c_values: &[Value],
    page: PageId,
    pool: &PagePool,
) -> Result<Vec<Vec<Facts>>, UniverseOverflow> {
    let mut out: Vec<Vec<Facts>> = Vec::new();
    for (ri, rule) in spec.page(page).option_rules.iter().enumerate() {
        let input_name = spec.schema.name(rule.head).to_owned();
        let mut atoms: Vec<Atom> = Vec::new();
        rule.body.visit_atoms(&mut |a: &Atom| {
            if let Some(rel) = spec.schema.lookup(&a.rel) {
                if spec.schema.kind(rel) == RelKind::Database {
                    atoms.push(a.clone());
                }
            }
        });
        if atoms.is_empty() {
            continue;
        }
        // variable domains: fresh witness, plus input-column constants for
        // head variables, plus constants the variable is equated to inside
        // the rule body (e.g. `… & status = "ordered"` — without the named
        // value the witness could never satisfy the rule)
        let mut vars: Vec<String> = Vec::new();
        for a in &atoms {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    if !vars.contains(v) {
                        vars.push(v.clone());
                    }
                }
            }
        }
        let eq_consts = equality_constants(&rule.body);
        let domains: Vec<Vec<Value>> = vars
            .iter()
            .map(|v| {
                let mut dom: BTreeSet<Value> = pool.opt_var(ri, v).into_iter().collect();
                if let Some(head_col) = rule.head_vars.iter().position(|hv| hv == v) {
                    dom.extend(
                        flow.consts(&input_name, head_col)
                            .filter_map(|c| symbols.lookup_constant(c))
                            .filter(|val| c_values.contains(val)),
                    );
                }
                if let Some(cs) = eq_consts.get(v) {
                    dom.extend(
                        cs.iter()
                            .filter_map(|c| symbols.lookup_constant(c))
                            .filter(|val| c_values.contains(val)),
                    );
                }
                dom.into_iter().collect()
            })
            .collect();
        let total: usize = domains.iter().map(Vec::len).product();
        if total > MAX_BLOCKS {
            return Err(UniverseOverflow { what: "option-witness", size: total });
        }
        if domains.iter().any(Vec::is_empty) {
            continue;
        }
        // enumerate assignments (odometer) and instantiate the atoms
        let mut blocks: Vec<Facts> = Vec::new();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let value_of = |v: &str| -> Value {
                let i = vars.iter().position(|x| x == v).expect("collected");
                domains[i][idx[i]]
            };
            let mut facts: Facts = Vec::new();
            let mut ok = true;
            for a in &atoms {
                let rel = spec.schema.lookup(&a.rel).expect("checked");
                let mut vals = Vec::with_capacity(a.terms.len());
                for t in &a.terms {
                    match t {
                        Term::Var(v) => vals.push(value_of(v)),
                        Term::Const(c) => match symbols.lookup_constant(c) {
                            Some(val) => vals.push(val),
                            None => {
                                ok = false;
                                break;
                            }
                        },
                        Term::Field { .. } => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    break;
                }
                facts.push((rel, Tuple::from(vals)));
            }
            if ok {
                let facts = canonicalize(facts);
                if !blocks.contains(&facts) {
                    blocks.push(facts);
                }
            }
            // odometer
            let mut pos = vars.len();
            let mut done = true;
            while pos > 0 {
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < domains[pos].len() {
                    done = false;
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
        if !blocks.is_empty() {
            out.push(blocks);
        }
    }
    Ok(out)
}

/// Constants each variable is (transitively) equated or compared to by the
/// equality atoms of a formula — a small union-find over variable names.
fn equality_constants(
    f: &wave_fol::Formula,
) -> std::collections::BTreeMap<String, BTreeSet<String>> {
    use wave_fol::Formula as F;
    let mut pairs: Vec<(String, String)> = Vec::new(); // var ~ var
    let mut direct: Vec<(String, String)> = Vec::new(); // var ~ const
    fn walk(
        f: &wave_fol::Formula,
        pairs: &mut Vec<(String, String)>,
        direct: &mut Vec<(String, String)>,
    ) {
        use wave_fol::Formula as F;
        match f {
            F::Eq(a, b) | F::Ne(a, b) => match (a, b) {
                (Term::Var(x), Term::Var(y)) => pairs.push((x.clone(), y.clone())),
                (Term::Var(x), Term::Const(c)) | (Term::Const(c), Term::Var(x)) => {
                    direct.push((x.clone(), c.clone()))
                }
                _ => {}
            },
            F::Not(x) => walk(x, pairs, direct),
            F::And(xs) | F::Or(xs) => xs.iter().for_each(|x| walk(x, pairs, direct)),
            F::Implies(a, b) => {
                walk(a, pairs, direct);
                walk(b, pairs, direct);
            }
            F::Exists(_, x) | F::Forall(_, x) => walk(x, pairs, direct),
            _ => {}
        }
    }
    walk(f, &mut pairs, &mut direct);
    let _ = F::True; // anchor the import
                     // transitive closure by iterating until stable (formulas are tiny)
    let mut out: std::collections::BTreeMap<String, BTreeSet<String>> =
        std::collections::BTreeMap::new();
    for (v, c) in &direct {
        out.entry(v.clone()).or_default().insert(c.clone());
    }
    loop {
        let mut changed = false;
        for (x, y) in &pairs {
            let xs = out.get(x).cloned().unwrap_or_default();
            let ys = out.get(y).cloned().unwrap_or_default();
            let union: BTreeSet<String> = xs.union(&ys).cloned().collect();
            if union.len() > xs.len() {
                out.insert(x.clone(), union.clone());
                changed = true;
            }
            if union.len() > ys.len() {
                out.insert(y.clone(), union);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

/// Append the cartesian product of per-column domains as candidate tuples.
/// An empty domain in any column admits no tuples (the Heuristic-1 effect:
/// "there are no tuples to consider for the cores of these tables").
fn push_product(
    rel: RelId,
    domains: &[Vec<Value>],
    out: &mut Facts,
    what: &'static str,
) -> Result<(), UniverseOverflow> {
    if domains.iter().any(Vec::is_empty) {
        return Ok(());
    }
    let total: usize = domains.iter().map(Vec::len).product();
    if out.len() + total > MAX_UNIVERSE {
        return Err(UniverseOverflow { what, size: out.len() + total });
    }
    let mut current = vec![0usize; domains.len()];
    loop {
        let tuple: Vec<Value> = current.iter().zip(domains).map(|(&i, d)| d[i]).collect();
        out.push((rel, Tuple::from(tuple)));
        // odometer increment
        let mut pos = domains.len();
        loop {
            if pos == 0 {
                return Ok(());
            }
            pos -= 1;
            current[pos] += 1;
            if current[pos] < domains[pos].len() {
                break;
            }
            current[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::build_pools;
    use wave_spec::{analyze, parse_spec, CompiledSpec};

    fn lsp() -> CompiledSpec {
        CompiledSpec::compile(
            parse_spec(
                r#"
            spec shop {
              database { user(name, passwd); criteria(cat, attr, value); }
              state    { userchoice(r, h, d); }
              inputs   { button(x); laptopsearch(r, h, d); }
              home LSP;
              page LSP {
                inputs { button, laptopsearch }
                options button(x) <- x = "search" | x = "view_cart" | x = "logout";
                options laptopsearch(r, h, d) <-
                    criteria("laptop", "ram", r) & criteria("laptop", "hdd", h)
                  & criteria("laptop", "display", d);
                insert userchoice(r, h, d) <- laptopsearch(r, h, d) & button("search");
                target HP  <- button("logout");
                target PIP <- exists r, h, d: laptopsearch(r, h, d) & button("search");
                target CC  <- button("view_cart");
              }
              page HP  { target HP <- true; }
              page PIP { target PIP <- true; }
              page CC  { target CC <- true; }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn heuristic1_leaves_empty_core_universe_for_lsp() {
        // Example 3.5 shape: criteria's third attribute and both user
        // attributes are compared to no constant → no core candidates
        let spec = lsp();
        let flow = analyze(&spec.spec, &[]);
        let u = core_universe(&spec, &flow, &spec.symbols, &spec.constants, true).unwrap();
        assert_eq!(u.len(), 0, "{:?}", u.candidates);
        assert_eq!(u.subset_count(), 1, "only the empty core");
    }

    #[test]
    fn without_heuristic1_core_universe_overflows() {
        let spec = lsp();
        let flow = analyze(&spec.spec, &[]);
        let err = core_universe(&spec, &flow, &spec.symbols, &spec.constants, false).unwrap_err();
        // |C| = 6 constants → 6^2 + 6^3 = 252 candidates ≫ limit
        assert!(err.size > MAX_UNIVERSE);
    }

    #[test]
    fn paper_strict_extension_is_empty_at_lsp() {
        // Example 3.7: Heuristic 2 leaves only the empty extension
        let spec = lsp();
        let flow = analyze(&spec.spec, &[]);
        let mut symbols = spec.symbols.clone();
        let pools = build_pools(&spec, &mut symbols);
        let page = spec.page_id("LSP").unwrap();
        let u = extension_universe(
            &spec,
            &flow,
            &symbols,
            &spec.constants,
            page,
            &pools[page.index()],
            &Vec::new(),
            ExtensionPruning::PaperStrict,
            true,
        )
        .unwrap();
        assert_eq!(u.variant_count(), 1, "{:?}", u.strict.candidates);
    }

    #[test]
    fn option_support_adds_witness_tuples_at_lsp() {
        let spec = lsp();
        let flow = analyze(&spec.spec, &[]);
        let mut symbols = spec.symbols.clone();
        let pools = build_pools(&spec, &mut symbols);
        let page = spec.page_id("LSP").unwrap();
        let u = extension_universe(
            &spec,
            &flow,
            &symbols,
            &spec.constants,
            page,
            &pools[page.index()],
            &Vec::new(),
            ExtensionPruning::OptionSupport,
            true,
        )
        .unwrap();
        // strict part is empty; the laptopsearch option rule contributes a
        // single joint witness block of three criteria tuples
        assert!(u.strict.is_empty(), "{:?}", u.strict.candidates);
        assert_eq!(u.blocks.len(), 1);
        assert_eq!(u.blocks[0].len(), 1);
        assert_eq!(u.blocks[0][0].len(), 3);
        assert_eq!(u.variant_count(), 2, "empty extension or the full witness block");
        let criteria = spec.schema.lookup("criteria").unwrap();
        assert!(u.blocks[0][0].iter().all(|(r, _)| *r == criteria));
    }

    #[test]
    fn subsets_enumerate_bitmap_counter_order() {
        let spec = lsp();
        let criteria = spec.schema.lookup("criteria").unwrap();
        let u = Universe {
            candidates: vec![
                (criteria, Tuple::from([Value(1), Value(2), Value(3)])),
                (criteria, Tuple::from([Value(4), Value(5), Value(6)])),
            ],
        };
        let all: Vec<Facts> = u.subsets().collect();
        assert_eq!(all.len(), 4);
        assert!(all[0].is_empty(), "first subset is the all-zero bitmap");
        assert_eq!(all[3].len(), 2, "last subset is the all-one bitmap");
    }

    #[test]
    fn extension_universe_uses_prev_input_values() {
        // state rule at HP' comparing db column to previous input value
        let spec = CompiledSpec::compile(
            parse_spec(
                r#"
            spec s {
              database { stock(item); }
              state { held(item); }
              inputs { pick(x); }
              home A;
              page A {
                inputs { pick }
                options pick(x) <- exists y: stock(y) & x = y;
                target B <- exists x: pick(x);
                target A <- true;
              }
              page B {
                insert held(x) <- prev pick(x) & stock(x);
                target A <- true;
              }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap();
        let flow = analyze(&spec.spec, &[]);
        let mut symbols = spec.symbols.clone();
        let pools = build_pools(&spec, &mut symbols);
        let b = spec.page_id("B").unwrap();
        let pick = spec.schema.lookup("prev$pick").unwrap();
        let prev: Facts = vec![(pick, Tuple::from([Value(77)]))];
        let u = extension_universe(
            &spec,
            &flow,
            &symbols,
            &spec.constants,
            b,
            &pools[b.index()],
            &prev,
            ExtensionPruning::OptionSupport,
            true,
        )
        .unwrap();
        let stock = spec.schema.lookup("stock").unwrap();
        assert!(
            u.strict.candidates.contains(&(stock, Tuple::from([Value(77)]))),
            "stock must be able to hold the previously picked value: {:?}",
            u.strict.candidates
        );
    }
}
