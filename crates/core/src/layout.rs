//! The paper's Section 4 bitmap layout: rank-based encoding of tuples into
//! bit indices.
//!
//! "Consider relation `R(A1, …, Ak)` and let `n_i` be the number of
//! constants assigned by our dataflow analysis to attribute `A_i`. Given an
//! `R`-tuple `t = (c1, …, ck)`, let `r_i` be the rank of constant `c_i` in
//! the list of constants assigned to `A_i` … The index `j` of the bitmap
//! bit corresponding to `t` is computed as
//! `j = r_k + n_k × (r_{k−1} + n_{k−1} × (… n_2 × r_1))`", and decoding
//! inverts with `r_k = j mod n_k`, `r_{k−1} = (j div n_k) mod n_{k−1}`, ….
//!
//! The layout gives each relation a dense bit range; a whole database
//! fragment (core or extension) is the concatenation of the per-relation
//! bitmaps. Rank lookup uses a hash table per attribute and rank-to-value
//! decoding indexes a vector, exactly as the paper describes.

use std::collections::HashMap;
use wave_relalg::{RelId, Tuple, Value};

/// Bit layout for one relation: per-attribute value lists.
#[derive(Debug, Clone)]
pub struct RelLayout {
    pub rel: RelId,
    /// Per attribute: the ordered constant list the dataflow assigned.
    columns: Vec<Vec<Value>>,
    /// Per attribute: value → rank.
    ranks: Vec<HashMap<Value, usize>>,
}

impl RelLayout {
    /// Build a layout from per-attribute value lists.
    pub fn new(rel: RelId, columns: Vec<Vec<Value>>) -> RelLayout {
        let ranks = columns
            .iter()
            .map(|col| col.iter().enumerate().map(|(i, &v)| (v, i)).collect::<HashMap<_, _>>())
            .collect();
        RelLayout { rel, columns, ranks }
    }

    /// Number of representable tuples (`Π n_i`; 0 when any attribute has
    /// an empty constant list — the Heuristic 1 "no tuples" case).
    pub fn size(&self) -> u64 {
        self.columns.iter().map(|c| c.len() as u64).product::<u64>()
            * u64::from(!self.columns.iter().any(Vec::is_empty))
    }

    /// Encode a tuple into its bit index (`None` when some attribute value
    /// is outside its constant list — the tuple is not representable).
    pub fn encode(&self, t: &Tuple) -> Option<u64> {
        if t.arity() != self.columns.len() {
            return None;
        }
        // j = r_k + n_k (r_{k-1} + n_{k-1} ( … n_2 r_1 ))
        let mut j = 0u64;
        for (i, &v) in t.values().iter().enumerate() {
            let rank = *self.ranks[i].get(&v)? as u64;
            j = j * self.columns[i].len() as u64 + rank;
        }
        Some(j)
    }

    /// Decode a bit index back into the tuple.
    pub fn decode(&self, mut j: u64) -> Option<Tuple> {
        if j >= self.size() {
            return None;
        }
        let mut values = vec![Value(0); self.columns.len()];
        // r_k = j mod n_k; r_{k-1} = (j div n_k) mod n_{k-1}; …
        for i in (0..self.columns.len()).rev() {
            let n = self.columns[i].len() as u64;
            let rank = (j % n) as usize;
            j /= n;
            values[i] = self.columns[i][rank];
        }
        Some(Tuple::from(values))
    }

    /// Iterate every representable tuple in bit-index order.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.size()).map(|j| self.decode(j).expect("j < size"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RelLayout {
        RelLayout::new(
            RelId(0),
            vec![
                vec![Value(10), Value(11)],            // n_1 = 2
                vec![Value(20), Value(21), Value(22)], // n_2 = 3
            ],
        )
    }

    #[test]
    fn size_is_product_of_column_counts() {
        assert_eq!(layout().size(), 6);
    }

    #[test]
    fn empty_column_means_no_tuples() {
        let l = RelLayout::new(RelId(0), vec![vec![Value(1)], vec![]]);
        assert_eq!(l.size(), 0);
        assert!(l.decode(0).is_none());
    }

    #[test]
    fn encode_decode_round_trip_exhaustively() {
        let l = layout();
        for j in 0..l.size() {
            let t = l.decode(j).expect("in range");
            assert_eq!(l.encode(&t), Some(j), "round trip for index {j}");
        }
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // spell out the formula
    fn paper_index_formula() {
        // j = r_2 + n_2 * r_1 for arity 2
        let l = layout();
        let t = Tuple::from([Value(11), Value(20)]); // ranks (1, 0)
        assert_eq!(l.encode(&t), Some(0 + 3 * 1));
        let t = Tuple::from([Value(10), Value(22)]); // ranks (0, 2)
        assert_eq!(l.encode(&t), Some(2 + 3 * 0));
    }

    #[test]
    fn foreign_values_are_unrepresentable() {
        let l = layout();
        assert_eq!(l.encode(&Tuple::from([Value(99), Value(20)])), None);
        assert_eq!(l.encode(&Tuple::from([Value(10)])), None, "wrong arity");
        assert!(l.decode(6).is_none(), "index out of range");
    }

    #[test]
    fn tuples_enumerates_in_index_order() {
        let l = layout();
        let all: Vec<Tuple> = l.tuples().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Tuple::from([Value(10), Value(20)]));
        assert_eq!(all[5], Tuple::from([Value(11), Value(22)]));
        // strictly increasing encodings
        for (j, t) in all.iter().enumerate() {
            assert_eq!(l.encode(t), Some(j as u64));
        }
    }

    #[test]
    fn nullary_layout_has_exactly_one_tuple() {
        let l = RelLayout::new(RelId(3), vec![]);
        assert_eq!(l.size(), 1);
        assert_eq!(l.decode(0), Some(Tuple::from([])));
        assert_eq!(l.encode(&Tuple::from([])), Some(0));
    }
}
