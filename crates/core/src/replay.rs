//! Counterexample replay and validation.
//!
//! Section 7 of the paper describes adapting wave to an incomplete
//! verifier: "Whenever a candidate pseudorun counterexample to the
//! property is produced in the course of the ndfs search, wave needs to
//! check that this in fact corresponds to a genuine run violating the
//! property."
//!
//! [`replay`] re-derives every step of a reported counterexample against
//! the successor relation and the property automaton:
//!
//! 1. the first configuration is among the start pseudoconfigurations,
//! 2. every following configuration is a `succP` successor of its
//!    predecessor,
//! 3. the recorded FO-component assignments match re-evaluation,
//! 4. the automaton can follow the recorded state sequence under those
//!    assignments, the cycle closes (the last step can reach the
//!    `cycle_start` step), and the cycle visits an accepting state.
//!
//! The verifier runs this check in tests and exposes it publicly so
//! downstream users can audit any counterexample they are handed.

use crate::config::PseudoConfig;
use crate::ndfs::CounterExample;
use crate::succ::{SearchCtx, SuccError};
use std::fmt;
use wave_ltl::Buchi;

/// Why a counterexample failed validation.
#[derive(Debug)]
pub enum ReplayError {
    Empty,
    BadCycleStart { cycle_start: usize, len: usize },
    NotAStartConfig,
    NotASuccessor { step: usize },
    AssignmentMismatch { step: usize, recorded: u64, recomputed: u64 },
    NoAutomatonTransition { step: usize },
    CycleDoesNotClose,
    CycleNotAccepting,
    Succ(SuccError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Empty => write!(f, "counterexample has no steps"),
            ReplayError::BadCycleStart { cycle_start, len } => {
                write!(f, "cycle start {cycle_start} out of range for {len} steps")
            }
            ReplayError::NotAStartConfig => {
                write!(f, "first step is not a start pseudoconfiguration")
            }
            ReplayError::NotASuccessor { step } => {
                write!(f, "step {step} is not a successor of step {}", step - 1)
            }
            ReplayError::AssignmentMismatch { step, recorded, recomputed } => write!(
                f,
                "step {step}: recorded assignment {recorded:#b} != recomputed {recomputed:#b}"
            ),
            ReplayError::NoAutomatonTransition { step } => {
                write!(f, "no automaton transition into step {step}")
            }
            ReplayError::CycleDoesNotClose => {
                write!(f, "last step cannot reach the cycle start")
            }
            ReplayError::CycleNotAccepting => {
                write!(f, "the cycle visits no accepting automaton state")
            }
            ReplayError::Succ(e) => write!(f, "replay failed to expand: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SuccError> for ReplayError {
    fn from(e: SuccError) -> Self {
        ReplayError::Succ(e)
    }
}

/// Validate a counterexample against the search context and automaton it
/// was produced under.
pub fn replay(
    ctx: &SearchCtx<'_>,
    buchi: &Buchi,
    components: &[wave_fol::Formula],
    ce: &CounterExample,
) -> Result<(), ReplayError> {
    if ce.steps.is_empty() {
        return Err(ReplayError::Empty);
    }
    if ce.cycle_start >= ce.steps.len() {
        return Err(ReplayError::BadCycleStart {
            cycle_start: ce.cycle_start,
            len: ce.steps.len(),
        });
    }

    // (1) start configuration (replay is not profiled or traced —
    // scratch profile, no-op tracer)
    let mut prof = crate::profile::SearchProfile::default();
    let mut tracer = wave_obs::NoopTracer;
    let mut spans = wave_obs::NoopSpans;
    let starts = ctx.initial_configs(&mut prof, &mut tracer, &mut spans)?;
    if !starts.contains(&ce.steps[0].config) {
        return Err(ReplayError::NotAStartConfig);
    }
    if ce.steps[0].auto_state != buchi.initial {
        return Err(ReplayError::NoAutomatonTransition { step: 0 });
    }

    // (2) successor relation + (3) assignments + (4) automaton steps
    for (i, step) in ce.steps.iter().enumerate() {
        let recomputed = assignment(ctx, components, &step.config)?;
        if recomputed != step.assignment {
            return Err(ReplayError::AssignmentMismatch {
                step: i,
                recorded: step.assignment,
                recomputed,
            });
        }
        if i + 1 < ce.steps.len() {
            let next = &ce.steps[i + 1];
            let succs = ctx.successors(&step.config, &mut prof, &mut tracer, &mut spans)?;
            if !succs.contains(&next.config) {
                return Err(ReplayError::NotASuccessor { step: i + 1 });
            }
            if !buchi.successors(step.auto_state, step.assignment).any(|t| t == next.auto_state) {
                return Err(ReplayError::NoAutomatonTransition { step: i + 1 });
            }
        }
    }

    // (4) the cycle closes: the last step can step back to cycle_start
    let last = ce.steps.last().expect("nonempty");
    let back = &ce.steps[ce.cycle_start];
    let succs = ctx.successors(&last.config, &mut prof, &mut tracer, &mut spans)?;
    let closes = succs.contains(&back.config)
        && buchi.successors(last.auto_state, last.assignment).any(|t| t == back.auto_state);
    if !closes {
        return Err(ReplayError::CycleDoesNotClose);
    }

    // the cycle must visit an accepting state (it is the candy phase, whose
    // base — the first cycle step — is accepting by construction)
    if !ce.steps[ce.cycle_start..].iter().any(|s| buchi.accepting[s.auto_state]) {
        return Err(ReplayError::CycleNotAccepting);
    }
    Ok(())
}

fn assignment(
    ctx: &SearchCtx<'_>,
    components: &[wave_fol::Formula],
    cfg: &PseudoConfig,
) -> Result<u64, ReplayError> {
    use wave_fol::{eval, Bindings, EvalCtx, SchemaResolver};
    let inst = cfg.materialize(ctx.spec, &ctx.base);
    let mut domain = inst.active_domain();
    domain.extend_from_slice(&ctx.c_values);
    domain.sort_unstable();
    domain.dedup();
    let page_name = &ctx.spec.page(cfg.page).name;
    let ectx = EvalCtx {
        instance: &inst,
        symbols: ctx.symbols,
        current_page: Some(page_name),
        domain: &domain,
    };
    let resolver = SchemaResolver(&ctx.spec.schema);
    let mut assign = 0u64;
    for (i, f) in components.iter().enumerate() {
        let v = eval(f, &ectx, &resolver, &mut Bindings::new())
            .map_err(|e| ReplayError::Succ(SuccError::Eval(e)))?;
        if v {
            assign |= 1 << i;
        }
    }
    Ok(assign)
}
