//! Visited sets for the nested depth-first search.
//!
//! Two implementations, one per state-store backend:
//!
//! * [`VisitTrie`] — the paper's data structure (Section 4: "The visited
//!   configurations are then stored in a trie data structure which allows
//!   updates and membership tests in time linear in the size of the
//!   bitmap"). Keys are the canonical byte encodings of `(automaton
//!   state, pseudoconfiguration)` pairs. Kept as the byte-key ablation
//!   baseline.
//! * [`VisitTable`] — the hash-consed replacement: once configurations
//!   are interned (see [`crate::intern`]), a search node is just a
//!   `(u32 config id, u32 automaton state)` pair, and the visited set is
//!   a flat hash table over packed `u64` keys — no per-visit
//!   serialization, no per-byte trie walk.
//!
//! Each key carries two marks — the `0` (stick) and `1` (candy) flags of
//! the nested depth-first search — and both structures report the
//! statistic the paper's experiments table records: the maximum number of
//! keys resident (its "Max. trie size" column).

/// A byte-trie with two boolean marks per key.
#[derive(Debug)]
pub struct VisitTrie {
    nodes: Vec<Node>,
    keys: usize,
    max_keys: usize,
}

#[derive(Debug, Default)]
struct Node {
    /// Sorted (byte, child index) pairs — keys are short, branching is low.
    children: Vec<(u8, u32)>,
    /// Bit 0: stick-visited; bit 1: candy-visited; bit 2: key present.
    marks: u8,
}

/// Which search phase marked the key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// The outer search (flag `0` in the paper's pseudocode).
    Stick,
    /// The nested search (flag `1`).
    Candy,
}

impl Phase {
    pub(crate) fn mask(self) -> u8 {
        match self {
            Phase::Stick => 0b01,
            Phase::Candy => 0b10,
        }
    }
}

impl Default for VisitTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl VisitTrie {
    /// Empty trie.
    pub fn new() -> Self {
        VisitTrie { nodes: vec![Node::default()], keys: 0, max_keys: 0 }
    }

    /// Remove all keys but remember the historical maximum.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::default());
        self.keys = 0;
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True when no key is stored.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    /// Largest number of keys ever resident (across `clear`s).
    pub fn max_len(&self) -> usize {
        self.max_keys
    }

    /// Number of trie nodes (memory diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn descend(&mut self, key: &[u8]) -> usize {
        let mut cur = 0usize;
        for &b in key {
            cur = match self.nodes[cur].children.binary_search_by_key(&b, |&(c, _)| c) {
                Ok(i) => self.nodes[cur].children[i].1 as usize,
                Err(i) => {
                    let next = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(i, (b, next as u32));
                    next
                }
            };
        }
        cur
    }

    /// Mark `key` as visited in `phase`. Returns `true` if it was already
    /// marked for that phase (i.e. the search can prune).
    pub fn mark(&mut self, key: &[u8], phase: Phase) -> bool {
        let node = self.descend(key);
        let n = &mut self.nodes[node];
        let was_key = n.marks & 0b100 != 0;
        let was_marked = n.marks & phase.mask() != 0;
        n.marks |= 0b100 | phase.mask();
        if !was_key {
            self.keys += 1;
            self.max_keys = self.max_keys.max(self.keys);
        }
        was_marked
    }

    /// Is `key` marked for `phase`?
    pub fn is_marked(&self, key: &[u8], phase: Phase) -> bool {
        let mut cur = 0usize;
        for &b in key {
            match self.nodes[cur].children.binary_search_by_key(&b, |&(c, _)| c) {
                Ok(i) => cur = self.nodes[cur].children[i].1 as usize,
                Err(_) => return false,
            }
        }
        self.nodes[cur].marks & phase.mask() != 0
    }
}

/// A visited set over interned search nodes: `(config id, automaton
/// state)` pairs packed into `u64` keys, two phase marks per key.
///
/// Mirrors the [`VisitTrie`] API (including the historical maximum
/// surviving [`VisitTable::clear`]) so the two backends are
/// interchangeable in the search and report the same "Max. trie size"
/// statistic.
#[derive(Debug, Default)]
pub struct VisitTable {
    marks: std::collections::HashMap<u64, u8>,
    max_keys: usize,
}

impl VisitTable {
    /// Empty table.
    pub fn new() -> Self {
        VisitTable::default()
    }

    /// Pack a `(config id, automaton state)` search node into a key.
    #[inline]
    pub fn key(config: crate::intern::ConfigId, auto_state: usize) -> u64 {
        (u64::from(config.0) << 32) | auto_state as u64
    }

    /// Remove all keys but remember the historical maximum.
    pub fn clear(&mut self) {
        self.marks.clear();
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True when no key is stored.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Largest number of keys ever resident (across `clear`s).
    pub fn max_len(&self) -> usize {
        self.max_keys
    }

    /// Mark `key` as visited in `phase`. Returns `true` if it was already
    /// marked for that phase (i.e. the search can prune).
    pub fn mark(&mut self, key: u64, phase: Phase) -> bool {
        let slot = self.marks.entry(key).or_insert(0);
        let was_marked = *slot & phase.mask() != 0;
        *slot |= phase.mask();
        self.max_keys = self.max_keys.max(self.marks.len());
        was_marked
    }

    /// Is `key` marked for `phase`?
    pub fn is_marked(&self, key: u64, phase: Phase) -> bool {
        self.marks.get(&key).is_some_and(|m| m & phase.mask() != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::ConfigId;

    #[test]
    fn table_mark_reports_prior_state() {
        let mut t = VisitTable::new();
        let k = VisitTable::key(ConfigId(7), 3);
        assert!(!t.mark(k, Phase::Stick));
        assert!(t.mark(k, Phase::Stick));
        assert!(!t.mark(k, Phase::Candy), "phases are independent");
        assert!(t.is_marked(k, Phase::Candy));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn table_keys_separate_config_and_state() {
        let a = VisitTable::key(ConfigId(1), 2);
        let b = VisitTable::key(ConfigId(2), 1);
        let c = VisitTable::key(ConfigId(1), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn table_clear_resets_but_max_persists() {
        let mut t = VisitTable::new();
        for i in 0..10 {
            t.mark(VisitTable::key(ConfigId(i), 0), Phase::Stick);
        }
        assert_eq!(t.max_len(), 10);
        t.clear();
        assert_eq!(t.len(), 0);
        t.mark(VisitTable::key(ConfigId(0), 0), Phase::Stick);
        assert_eq!(t.max_len(), 10, "historic max survives clear");
    }

    #[test]
    fn fresh_keys_are_unmarked() {
        let t = VisitTrie::new();
        assert!(!t.is_marked(b"abc", Phase::Stick));
        assert!(t.is_empty());
    }

    #[test]
    fn mark_reports_prior_state() {
        let mut t = VisitTrie::new();
        assert!(!t.mark(b"abc", Phase::Stick));
        assert!(t.mark(b"abc", Phase::Stick));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn phases_are_independent() {
        let mut t = VisitTrie::new();
        t.mark(b"k", Phase::Stick);
        assert!(!t.is_marked(b"k", Phase::Candy));
        assert!(!t.mark(b"k", Phase::Candy));
        assert!(t.is_marked(b"k", Phase::Candy));
        assert_eq!(t.len(), 1, "same key, both phases: one key");
    }

    #[test]
    fn prefix_keys_are_distinct() {
        let mut t = VisitTrie::new();
        t.mark(b"ab", Phase::Stick);
        assert!(!t.is_marked(b"a", Phase::Stick));
        assert!(!t.is_marked(b"abc", Phase::Stick));
        t.mark(b"a", Phase::Stick);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut t = VisitTrie::new();
        assert!(!t.mark(b"", Phase::Candy));
        assert!(t.is_marked(b"", Phase::Candy));
    }

    #[test]
    fn clear_resets_but_max_persists() {
        let mut t = VisitTrie::new();
        for i in 0..10u8 {
            t.mark(&[i], Phase::Stick);
        }
        assert_eq!(t.max_len(), 10);
        t.clear();
        assert_eq!(t.len(), 0);
        t.mark(b"x", Phase::Stick);
        assert_eq!(t.max_len(), 10, "historic max survives clear");
    }

    #[test]
    fn many_keys_round_trip() {
        let mut t = VisitTrie::new();
        let keys: Vec<Vec<u8>> = (0..500u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for k in &keys {
            assert!(!t.mark(k, Phase::Stick));
        }
        for k in &keys {
            assert!(t.is_marked(k, Phase::Stick));
            assert!(!t.is_marked(k, Phase::Candy));
        }
        assert_eq!(t.len(), 500);
    }
}
