//! Delta-driven query memoization and the per-core optimized plan
//! overlay — the "query engine" side of the search.
//!
//! The NDFS expands enormously many pseudoconfigurations that differ in
//! only one or two fact sections: every successor of one expansion
//! shares its previous-input and state sections, and the hash-consed
//! [`crate::intern::ConfigStore`] extends the sharing to *equal*
//! sections across expansions. A rule body whose read-set touches only
//! unchanged sections must therefore produce the same answer — the
//! [`QueryMemo`] here makes that observation operational by assigning
//! every distinct section content an *epoch* and keying each prepared
//! query's result on the epochs of exactly the sections in its
//! [`ReadProfile`] mask.
//!
//! The invariant that makes the key sound: for a fixed search core, a
//! plan-executed query's result is a function of (a) the base instance
//! (fixed per [`QueryEngine`]), (b) the contents of the config sections
//! it scans, and (c) its parameter bindings — and the bindings
//! themselves are a function of the input/prev sections
//! ([`wave_spec::CompiledSpec::bind_params`] reads only input-kind
//! relations, which `materialize` fills from those two sections).
//! Plans never consult the active domain (only the interpreter fallback
//! does, and interpreted rules are never memoized), so the section
//! epochs plus the page marker determine the result exactly.
//!
//! Epochs are assigned by content, not by `Arc` pointer, so
//! structurally equal sections reached through different allocations
//! still hit; a pointer-identity fast path (keeping the `Arc` alive to
//! prevent address reuse) makes the common same-allocation case a
//! single `HashMap` probe. Both the epoch table and the memo are
//! insert-capped: when full they stop learning, never evict — eviction
//! order would be allocation-order dependent, and a memo that silently
//! drops entries is still correct but must never change answers.

use crate::config::{PseudoConfig, SharedFacts};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use wave_relalg::{ExecStats, Instance, InstanceStats, Params, PreparedQuery, Relation, Tuple};
use wave_spec::{sections, CompiledSpec, ReadProfile, RuleExec, TargetExec};

/// Insert caps keeping the tables bounded on pathological searches.
/// Hitting a cap degrades hit-rate, never correctness.
const EPOCH_CAP: usize = 1 << 17;
const MEMO_CAP: usize = 1 << 17;

/// Content-addressed epoch numbering for fact sections.
#[derive(Default)]
struct EpochTable {
    next: u64,
    /// Fast path: `Arc` address → epoch. The stored clone keeps the
    /// allocation alive, so an address can never be reused by a
    /// different section while its entry exists.
    by_ptr: HashMap<usize, (u64, SharedFacts)>,
    /// Ground truth: section content → epoch.
    by_content: HashMap<SharedFacts, u64>,
}

impl EpochTable {
    /// Epoch of a section's content. Epochs start at 1 (0 is the "not
    /// read" slot in memo keys). Returns a fresh, never-repeating epoch
    /// once the table is full — subsequent memo keys simply never match.
    fn epoch(&mut self, facts: &SharedFacts) -> u64 {
        let ptr = SharedFacts::as_ptr(facts) as usize;
        if let Some(&(e, _)) = self.by_ptr.get(&ptr) {
            return e;
        }
        let e = match self.by_content.get(facts) {
            Some(&e) => e,
            None => {
                self.next += 1;
                let e = self.next;
                if self.by_content.len() >= EPOCH_CAP {
                    return e; // full: unique throwaway epoch
                }
                self.by_content.insert(SharedFacts::clone(facts), e);
                e
            }
        };
        if self.by_ptr.len() < EPOCH_CAP {
            self.by_ptr.insert(ptr, (e, SharedFacts::clone(facts)));
        }
        e
    }
}

/// Memo key: query id plus the epochs of the sections it reads (0 for
/// sections outside its mask) and the page marker when read.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    qid: u32,
    page: u32,
    epochs: [u64; 5],
}

/// A memoized result.
enum MemoVal {
    Rows(Vec<Tuple>),
    Bool(bool),
}

/// Per-query cost roll-up, collected only when the engine is built
/// with profiling on (`wave check --profile-out`). One entry per
/// compiled query id; `calls` counts memo hits and executions alike.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    pub qid: u32,
    /// Rule/target evaluations routed through the engine (hits + execs).
    pub calls: u64,
    pub memo_hits: u64,
    pub memo_misses: u64,
    /// Wall time in actual plan executions (memo hits cost none).
    pub exec_ns: u64,
    /// Output rows produced by executions.
    pub rows: u64,
    pub hash_builds: u64,
    pub rows_built: u64,
    pub rows_probed: u64,
}

impl QueryCost {
    /// Fold `other` into `self` (same qid).
    pub fn add(&mut self, other: &QueryCost) {
        self.calls += other.calls;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.exec_ns += other.exec_ns;
        self.rows += other.rows;
        self.hash_builds += other.hash_builds;
        self.rows_built += other.rows_built;
        self.rows_probed += other.rows_probed;
    }

    /// Memo hit rate over engine-routed calls, `None` before any call.
    pub fn hit_rate(&self) -> Option<f64> {
        let probes = self.memo_hits + self.memo_misses;
        if probes == 0 {
            None
        } else {
            Some(self.memo_hits as f64 / probes as f64)
        }
    }
}

/// Per-core query engine: the optimized plan overlay plus the
/// delta-driven result memo. Owned by `SearchCtx`; uses interior
/// mutability because the search holds the context by shared reference.
pub struct QueryEngine {
    /// Optimized plans indexed by query id; `None` falls back to the
    /// compiled plan (or the slot belongs to an interpreted rule).
    /// Empty when the engine is disabled (`--naive-joins`,
    /// `--interpret`).
    plans: Vec<Option<PreparedQuery>>,
    memo_enabled: bool,
    epochs: RefCell<EpochTable>,
    memo: RefCell<HashMap<MemoKey, MemoVal>>,
    memo_hits: Cell<u64>,
    memo_misses: Cell<u64>,
    /// Inserts dropped because the memo hit its cap (the memo never
    /// evicts resident entries; "eviction" in the trace-event sense).
    memo_evictions: Cell<u64>,
    join_builds: Cell<u64>,
    /// Per-qid cost roll-ups; empty unless built with `profiled`.
    profiled: bool,
    costs: RefCell<Vec<QueryCost>>,
}

impl QueryEngine {
    /// Build the engine for one search core. When `enabled`, every
    /// plan-compiled rule and target is re-optimized against
    /// cardinality statistics collected from `base`, and the result
    /// memo is armed; otherwise both stay off (the `--naive-joins`
    /// ablation and the `--interpret` baseline).
    pub fn build(spec: &CompiledSpec, base: &Instance, enabled: bool) -> QueryEngine {
        QueryEngine::build_profiled(spec, base, enabled, false)
    }

    /// [`QueryEngine::build`], optionally arming the per-qid cost
    /// roll-ups ([`QueryEngine::query_costs`]). Profiling adds one
    /// clock read per execution; answers are unaffected.
    pub fn build_profiled(
        spec: &CompiledSpec,
        base: &Instance,
        enabled: bool,
        profiled: bool,
    ) -> QueryEngine {
        let mut plans = Vec::new();
        if enabled {
            let stats = InstanceStats::collect(base);
            plans.resize_with(spec.num_queries as usize, || None);
            for page in &spec.pages {
                for rule in
                    page.option_rules.iter().chain(&page.state_rules).chain(&page.action_rules)
                {
                    if let RuleExec::Plan(q) = &rule.exec {
                        plans[rule.reads.qid as usize] = Some(q.optimized(&spec.schema, &stats));
                    }
                }
                for t in &page.target_rules {
                    if let TargetExec::Plan(q) = &t.exec {
                        plans[t.reads.qid as usize] = Some(q.optimized(&spec.schema, &stats));
                    }
                }
            }
        }
        let mut costs = Vec::new();
        if profiled {
            costs.resize_with(spec.num_queries as usize, QueryCost::default);
            for (qid, c) in costs.iter_mut().enumerate() {
                c.qid = qid as u32;
            }
        }
        QueryEngine {
            plans,
            memo_enabled: enabled,
            epochs: RefCell::new(EpochTable::default()),
            memo: RefCell::new(HashMap::new()),
            memo_hits: Cell::new(0),
            memo_misses: Cell::new(0),
            memo_evictions: Cell::new(0),
            join_builds: Cell::new(0),
            profiled,
            costs: RefCell::new(costs),
        }
    }

    #[inline]
    fn cost_mut(&self, qid: u32, f: impl FnOnce(&mut QueryCost)) {
        if !self.profiled {
            return;
        }
        let mut costs = self.costs.borrow_mut();
        if let Some(c) = costs.get_mut(qid as usize) {
            f(c);
        }
    }

    /// The plan to execute for query `qid`: the optimized overlay when
    /// present, else the compiled plan the caller holds.
    fn plan_for<'q>(&'q self, qid: u32, compiled: &'q PreparedQuery) -> &'q PreparedQuery {
        self.plans.get(qid as usize).and_then(Option::as_ref).unwrap_or(compiled)
    }

    /// The memo key for running `reads` against `cfg`, or `None` when
    /// memoization is off.
    fn key(&self, reads: ReadProfile, cfg: &PseudoConfig) -> Option<MemoKey> {
        if !self.memo_enabled {
            return None;
        }
        let mut epochs = [0u64; 5];
        let table = &mut *self.epochs.borrow_mut();
        for (i, (bit, section)) in [
            (sections::EXT, &cfg.ext),
            (sections::INPUT, &cfg.input),
            (sections::PREV, &cfg.prev),
            (sections::STATE, &cfg.state),
            (sections::ACTIONS, &cfg.actions),
        ]
        .into_iter()
        .enumerate()
        {
            if reads.mask & bit != 0 {
                epochs[i] = table.epoch(section);
            }
        }
        let page = if reads.mask & sections::PAGE != 0 { cfg.page.0 + 1 } else { 0 };
        Some(MemoKey { qid: reads.qid, page, epochs })
    }

    /// Run a rule query, memoized on the section epochs of `cfg`. The
    /// working instance and parameter bindings are requested lazily —
    /// on a memo hit they are never needed, which lets the caller skip
    /// materializing the instance altogether.
    pub fn run_rows<'i>(
        &self,
        reads: ReadProfile,
        compiled: &PreparedQuery,
        cfg: &PseudoConfig,
        lazy: impl FnOnce() -> (&'i Instance, &'i Params),
    ) -> Result<Vec<Tuple>, wave_relalg::ExecError> {
        let key = self.key(reads, cfg);
        if let Some(key) = key {
            if let Some(MemoVal::Rows(rows)) = self.memo.borrow().get(&key) {
                self.memo_hits.set(self.memo_hits.get() + 1);
                self.cost_mut(reads.qid, |c| {
                    c.calls += 1;
                    c.memo_hits += 1;
                });
                return Ok(rows.clone());
            }
        }
        let (inst, params) = lazy();
        let rel = self.execute(reads.qid, compiled, inst, params)?;
        let rows: Vec<Tuple> = rel.iter().cloned().collect();
        if let Some(key) = key {
            self.memo_misses.set(self.memo_misses.get() + 1);
            self.cost_mut(reads.qid, |c| c.memo_misses += 1);
            let mut memo = self.memo.borrow_mut();
            if memo.len() < MEMO_CAP {
                memo.insert(key, MemoVal::Rows(rows.clone()));
            } else {
                self.memo_evictions.set(self.memo_evictions.get() + 1);
            }
        }
        Ok(rows)
    }

    /// Run a target condition, memoized on the section epochs of `cfg`;
    /// `lazy` as in [`QueryEngine::run_rows`].
    pub fn run_bool<'i>(
        &self,
        reads: ReadProfile,
        compiled: &PreparedQuery,
        cfg: &PseudoConfig,
        lazy: impl FnOnce() -> (&'i Instance, &'i Params),
    ) -> Result<bool, wave_relalg::ExecError> {
        let key = self.key(reads, cfg);
        if let Some(key) = key {
            if let Some(MemoVal::Bool(b)) = self.memo.borrow().get(&key) {
                self.memo_hits.set(self.memo_hits.get() + 1);
                self.cost_mut(reads.qid, |c| {
                    c.calls += 1;
                    c.memo_hits += 1;
                });
                return Ok(*b);
            }
        }
        let (inst, params) = lazy();
        let b = !self.execute(reads.qid, compiled, inst, params)?.is_empty();
        if let Some(key) = key {
            self.memo_misses.set(self.memo_misses.get() + 1);
            self.cost_mut(reads.qid, |c| c.memo_misses += 1);
            let mut memo = self.memo.borrow_mut();
            if memo.len() < MEMO_CAP {
                memo.insert(key, MemoVal::Bool(b));
            } else {
                self.memo_evictions.set(self.memo_evictions.get() + 1);
            }
        }
        Ok(b)
    }

    fn execute(
        &self,
        qid: u32,
        compiled: &PreparedQuery,
        inst: &Instance,
        params: &Params,
    ) -> Result<Relation, wave_relalg::ExecError> {
        let mut stats = ExecStats::default();
        let t0 = if self.profiled { Some(std::time::Instant::now()) } else { None };
        let rel = self.plan_for(qid, compiled).run_counting(inst, params, &mut stats)?;
        self.join_builds.set(self.join_builds.get() + stats.hash_builds);
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.cost_mut(qid, |c| {
                c.calls += 1;
                c.exec_ns += ns;
                c.rows += rel.len() as u64;
                c.hash_builds += stats.hash_builds;
                c.rows_built += stats.rows_built;
                c.rows_probed += stats.rows_probed;
            });
        }
        Ok(rel)
    }

    /// Memo lookups that returned a cached result.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.get()
    }

    /// Memo lookups that fell through to execution (memoized runs only;
    /// disabled-memo executions count neither way).
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses.get()
    }

    /// Hash tables built by lowered join operators.
    pub fn join_builds(&self) -> u64 {
        self.join_builds.get()
    }

    /// Memo inserts dropped at the capacity cap (see the field docs —
    /// the memo never evicts resident entries).
    pub fn memo_evictions(&self) -> u64 {
        self.memo_evictions.get()
    }

    /// Per-qid cost roll-ups with at least one engine-routed call.
    /// Empty unless built with [`QueryEngine::build_profiled`].
    pub fn query_costs(&self) -> Vec<QueryCost> {
        self.costs.borrow().iter().filter(|c| c.calls > 0).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{canonicalize, core_instance, no_facts, Facts};
    use std::sync::Arc;
    use wave_relalg::Value;
    use wave_spec::{parse_spec, CompiledRule, PageId};

    fn spec() -> CompiledSpec {
        CompiledSpec::compile(
            parse_spec(
                r#"
            spec memo {
              database { item(i); }
              state { seen(i); }
              inputs { pick(x); }
              home P;
              page P {
                inputs { pick }
                options pick(x) <- item(x);
                insert seen(x) <- pick(x);
                target P <- exists x: seen(x);
              }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    fn fact(spec: &CompiledSpec, rel: &str, vals: &[u32]) -> (wave_relalg::RelId, Tuple) {
        (
            spec.schema.lookup(rel).unwrap(),
            Tuple::from(vals.iter().map(|&v| Value(v)).collect::<Vec<_>>()),
        )
    }

    fn option_rule(spec: &CompiledSpec) -> &CompiledRule {
        &spec.page(PageId(0)).option_rules[0]
    }

    fn run(
        engine: &QueryEngine,
        spec: &CompiledSpec,
        base: &Instance,
        cfg: &PseudoConfig,
    ) -> Vec<Tuple> {
        let rule = option_rule(spec);
        let RuleExec::Plan(q) = &rule.exec else { panic!("option rule compiles to a plan") };
        let inst = cfg.materialize(spec, base);
        let params = spec.bind_params(&inst);
        engine.run_rows(rule.reads, q, cfg, || (&inst, &params)).unwrap()
    }

    #[test]
    fn unchanged_sections_hit_even_across_allocations() {
        let s = spec();
        let core: Facts = vec![fact(&s, "item", &[1]), fact(&s, "item", &[2])];
        let base = core_instance(&s, &core);
        let engine = QueryEngine::build(&s, &base, true);

        let mut cfg = PseudoConfig::initial(PageId(0));
        cfg.state = Arc::new(canonicalize(vec![fact(&s, "seen", &[1])]));
        let first = run(&engine, &s, &base, &cfg);
        assert_eq!(engine.memo_misses(), 1);
        assert_eq!(engine.memo_hits(), 0);

        // Same Arc: pointer fast path.
        let again = run(&engine, &s, &base, &cfg);
        assert_eq!(again, first);
        assert_eq!(engine.memo_hits(), 1);

        // Equal content behind a different allocation still hits.
        let mut cfg2 = PseudoConfig::initial(PageId(0));
        cfg2.state = Arc::new(canonicalize(vec![fact(&s, "seen", &[1])]));
        assert!(!Arc::ptr_eq(&cfg.state, &cfg2.state));
        let third = run(&engine, &s, &base, &cfg2);
        assert_eq!(third, first);
        assert_eq!(engine.memo_hits(), 2);
        assert_eq!(engine.memo_misses(), 1);
    }

    #[test]
    fn changed_read_section_re_runs_unrelated_change_hits() {
        let s = spec();
        let core: Facts = vec![fact(&s, "item", &[1])];
        let base = core_instance(&s, &core);
        let engine = QueryEngine::build(&s, &base, true);
        let rule = option_rule(&s);
        // The option rule reads only the database extension; state is
        // outside its mask.
        assert_eq!(rule.reads.mask & wave_spec::sections::STATE, 0);
        assert_ne!(rule.reads.mask & wave_spec::sections::EXT, 0);

        let cfg = PseudoConfig::initial(PageId(0));
        let baseline = run(&engine, &s, &base, &cfg);
        assert_eq!(engine.memo_misses(), 1);

        // Mutating a section the rule does NOT read must hit the memo.
        let mut unrelated = PseudoConfig::initial(PageId(0));
        unrelated.state = Arc::new(canonicalize(vec![fact(&s, "seen", &[1])]));
        assert_eq!(run(&engine, &s, &base, &unrelated), baseline);
        assert_eq!(engine.memo_hits(), 1, "state change is invisible to the option rule");

        // Mutating a section it DOES read must re-run with the new data.
        let mut related = PseudoConfig::initial(PageId(0));
        related.ext = Arc::new(canonicalize(vec![fact(&s, "item", &[7])]));
        let widened = run(&engine, &s, &base, &related);
        assert_eq!(engine.memo_misses(), 2, "ext change must re-execute");
        assert_ne!(widened, baseline);
        assert!(widened.contains(&Tuple::from([Value(7)])));
    }

    #[test]
    fn disabled_engine_neither_memoizes_nor_optimizes() {
        let s = spec();
        let base = core_instance(&s, &vec![fact(&s, "item", &[1])]);
        let engine = QueryEngine::build(&s, &base, false);
        let cfg = PseudoConfig { input: no_facts(), ..PseudoConfig::initial(PageId(0)) };
        let a = run(&engine, &s, &base, &cfg);
        let b = run(&engine, &s, &base, &cfg);
        assert_eq!(a, b);
        assert_eq!(engine.memo_hits(), 0);
        assert_eq!(engine.memo_misses(), 0);
        assert!(engine.plans.is_empty(), "no optimized overlay when disabled");
    }
}
