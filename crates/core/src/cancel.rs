//! Cooperative cancellation for verification searches.
//!
//! A [`CancelToken`] is a cheap, clonable flag threaded through the search
//! budget checks ([`crate::ndfs::Ndfs`] probes it once per expansion). The
//! parallel scheduler in `wave-svc` hands every work unit a *child* of a
//! shared token so that the first counterexample can cancel all sibling
//! units at once, while a unit-local cancel (work proven redundant by an
//! earlier-ordered unit) does not disturb the rest of the check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[derive(Clone, Debug, Default)]
struct Inner {
    flag: Arc<AtomicBool>,
    parent: Option<Box<CancelToken>>,
}

/// A cooperative cancellation flag, optionally chained to a parent token.
/// Cancelling a token cancels everything derived from it via [`child`];
/// cancelling a child leaves the parent (and its other children) running.
///
/// [`child`]: CancelToken::child
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Inner);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that is cancelled when either it or `self` is cancelled.
    pub fn child(&self) -> CancelToken {
        CancelToken(Inner {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Box::new(self.clone())),
        })
    }

    /// Raise the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Release);
    }

    /// True once this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        if self.0.flag.load(Ordering::Acquire) {
            return true;
        }
        match &self.0.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(t.is_cancelled());
    }

    #[test]
    fn parent_cancel_reaches_children_but_not_vice_versa() {
        let parent = CancelToken::new();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled(), "sibling must be unaffected");
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");
        parent.cancel();
        assert!(b.is_cancelled(), "parent cancel reaches every child");
    }
}
