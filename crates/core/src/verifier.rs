//! The top-level wave verifier.
//!
//! Implements the full roadmap of Section 3: given a specification `W` and
//! an LTL-FO property `φ0`,
//!
//! 1. negate the property and replace its FO components with propositions
//!    (`φ_aux`), build the Büchi automaton `A_{¬φ_aux}` once,
//! 2. enumerate the `C_∃` assignments for the property's universal
//!    variables (relevance-reduced; see [`crate::domain`]),
//! 3. per assignment, run the dataflow analysis and enumerate the
//!    Heuristic-1-pruned database cores,
//! 4. per core, run the nested depth-first search over pseudoruns.
//!
//! A lollipop found anywhere is a counterexample (the property is
//! violated); exhausting the whole space proves the property — *complete*
//! verification — when both the specification and the property are
//! input-bounded, and a sound "no counterexample found" verdict otherwise.

use crate::budget::{BudgetPool, DEFAULT_BUDGET_CHUNK};
use crate::cancel::CancelToken;
use crate::config::core_instance;
use crate::domain::{assignments, build_pools, relevant_constants, Assignment, ParamMode};
use crate::memo::{QueryCost, QueryEngine};
use crate::ndfs::{Budget, CounterExample, Ndfs, SearchLimits, SearchResult};
use crate::profile::SearchProfile;
use crate::store::{ByteStore, InternedStore, StateStore, StateStoreKind, TieredStore};
use crate::succ::{SearchCtx, SuccError};
use crate::universe::{core_universe, ExtensionPruning, UniverseOverflow};
use crate::visibility::Visibility;
use std::ops::Range;
use std::time::{Duration, Instant};
use wave_fol::{check_input_bounded, constants as fo_constants, Formula};
use wave_ltl::{extract, nnf, parse_property, Buchi, Property};
use wave_obs::{NoopSpans, NoopTracer, SearchTracer, SpanSink, TraceEvent, NO_INDEX};
use wave_relalg::{SymbolTable, Value};
use wave_spec::{analyze, CompileSpecError, CompiledSpec, Dataflow, Spec};

/// Verifier configuration.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Heuristic 1: core pruning (Section 3.2). Disabling it is only
    /// feasible on miniature specifications.
    pub heuristic1: bool,
    /// Heuristic 2: extension pruning.
    pub heuristic2: bool,
    /// Extension-pruning flavor (paper-strict vs option-support).
    pub pruning: ExtensionPruning,
    /// `C_∃` equality-pattern enumeration mode.
    pub param_mode: ParamMode,
    /// Give up after this many generated pseudoconfigurations. The limit
    /// is global to a check: all units (and, under the parallel
    /// scheduler, all workers) draw on one shared [`BudgetPool`].
    pub max_steps: Option<u64>,
    /// Wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Steps a search leases from the shared budget pool per refill.
    /// Purely a contention-tuning knob — the exhaustion point is
    /// chunk-size independent (see [`crate::budget`]), so verdicts and
    /// reports do not depend on it and result caches must ignore it
    /// (like `state_store`).
    pub budget_chunk: u64,
    /// Use compiled prepared plans (`true`) or the FO interpreter for
    /// every rule (`false`; the query-evaluation ablation baseline).
    pub use_plans: bool,
    /// State-store backend: hash-consed interned ids (default) or the
    /// byte-key baseline. Semantics-neutral — verdicts, traces and search
    /// statistics are identical; only speed and memory differ (result
    /// caches must therefore ignore it, like `cancel`).
    pub state_store: StateStoreKind,
    /// Query-engine ablation: when true, skip the cardinality-guided plan
    /// optimizer (so every join stays nested-loop) and the delta-driven
    /// result memo. Semantics-neutral like `state_store` — verdicts,
    /// traces and deterministic statistics are identical; only speed and
    /// the memo/join profile counters differ (result caches ignore it).
    pub naive_joins: bool,
    /// Cooperative cancellation: when the token is raised mid-search the
    /// check stops with [`Verdict::Unknown`]`(`[`Budget::Cancelled`]`)`.
    /// Not part of the verification semantics (result caches ignore it).
    pub cancel: Option<CancelToken>,
    /// Static slicing (`--no-slice` clears it): run the wave-flow
    /// analyses at construction, skip statically dead rules, take the
    /// monotone insert fast path on pages without live delete rules,
    /// and narrow memo read-masks over always-empty relations. Every
    /// transformation is runtime-inert (see [`crate::SliceInfo`]) —
    /// verdicts, traces and deterministic counters are byte-identical
    /// either way — but the slice counters it stamps into the profile
    /// differ, so result caches must key on it.
    pub slice: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            heuristic1: true,
            heuristic2: true,
            pruning: ExtensionPruning::OptionSupport,
            param_mode: ParamMode::DistinctFresh,
            max_steps: None,
            time_limit: None,
            budget_chunk: DEFAULT_BUDGET_CHUNK,
            use_plans: true,
            state_store: StateStoreKind::Interned,
            naive_joins: false,
            cancel: None,
            slice: true,
        }
    }
}

impl VerifyOptions {
    /// Build the shared [`BudgetPool`] for one check starting at
    /// `started`; `None` when neither budget is configured. One pool per
    /// check: a property suite gives each property a fresh step budget,
    /// exactly as the sequential per-property loop does.
    pub fn budget_pool(&self, started: Instant) -> Option<std::sync::Arc<BudgetPool>> {
        BudgetPool::new(self.max_steps, self.time_limit, self.budget_chunk, started)
    }
}

/// Aggregate statistics of one verification (the paper's table columns).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    pub elapsed: Duration,
    /// Max pseudorun length (of the counterexample when violated).
    pub max_run_len: usize,
    /// Max number of distinct visited pairs between cores (the paper's
    /// "Max. trie size"); spans both tiers under the tiered backend —
    /// see `max_resident`/`max_spilled` for the split.
    pub max_trie: usize,
    /// High-water mark of visited pairs resident in memory. Equals
    /// `max_trie` under the in-memory backends; bounded by the byte
    /// budget under the tiered one.
    pub max_resident: usize,
    /// High-water mark of visited pairs spilled to disk (duplicate
    /// copies across segments included; zero for in-memory backends).
    pub max_spilled: usize,
    /// Pseudoconfigurations generated.
    pub configs: u64,
    /// Database cores searched.
    pub cores: u64,
    /// `C_∃` assignments considered.
    pub assignments: u64,
    /// Per-phase wall-time and interner counters of the searches.
    pub profile: SearchProfile,
    /// Per-query cost attribution, populated only by profiled runs
    /// ([`Verifier::check_profiled`]); empty otherwise. One entry per
    /// query id that executed at least once, sorted by qid after merge.
    pub queries: Vec<QueryCost>,
}

impl Stats {
    /// Fold another measurement into this one: counters add, maxima take
    /// the max. `elapsed` adds too, so under the parallel scheduler the
    /// merged value is the total search time across workers — which can
    /// exceed wall-clock; schedulers overwrite it with the measured
    /// wall-clock duration after merging.
    pub fn merge(&mut self, other: &Stats) {
        self.elapsed += other.elapsed;
        self.max_run_len = self.max_run_len.max(other.max_run_len);
        self.max_trie = self.max_trie.max(other.max_trie);
        self.max_resident = self.max_resident.max(other.max_resident);
        self.max_spilled = self.max_spilled.max(other.max_spilled);
        self.configs += other.configs;
        self.cores += other.cores;
        self.assignments += other.assignments;
        self.profile.add(&other.profile);
        for q in &other.queries {
            match self.queries.iter_mut().find(|c| c.qid == q.qid) {
                Some(c) => c.add(q),
                None => self.queries.push(q.clone()),
            }
        }
        self.queries.sort_by_key(|c| c.qid);
    }
}

/// Verdict of a verification.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Every run satisfies the property (conclusive only when `complete`).
    Holds,
    /// A counterexample pseudorun was found.
    Violated(CounterExample),
    /// The search budget was exhausted first.
    Unknown(Budget),
}

impl Verdict {
    /// True for [`Verdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// True for [`Verdict::Violated`].
    pub fn violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }
}

/// Result of [`Verifier::check`].
#[derive(Clone, Debug)]
pub struct Verification {
    pub verdict: Verdict,
    pub stats: Stats,
    /// True when both spec and property are input-bounded — the regime in
    /// which wave is a complete verifier (Theorem 3.3 / 3.8).
    pub complete: bool,
}

/// Verification errors.
#[derive(Debug)]
pub enum VerifyError {
    Spec(CompileSpecError),
    Property(wave_fol::ParseError),
    /// More FO components than the automaton's 64-proposition guard limit.
    TooManyComponents(usize),
    Overflow(UniverseOverflow),
    Succ(SuccError),
    /// Checkpoint I/O failed or an adopted checkpoint turned out to be
    /// internally inconsistent (see [`crate::checkpoint`]).
    Checkpoint(String),
    /// A worker running the unit panicked. The schedulers catch the
    /// unwind and record it as a failed outcome so one poisoned unit
    /// cannot take the orchestrator (or its sibling checks) down.
    Panic(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Spec(e) => write!(f, "{e}"),
            VerifyError::Property(e) => write!(f, "property: {e}"),
            VerifyError::TooManyComponents(n) => {
                write!(f, "property has {n} FO components (limit 64)")
            }
            VerifyError::Overflow(e) => write!(f, "{e}"),
            VerifyError::Succ(e) => write!(f, "{e}"),
            VerifyError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            VerifyError::Panic(e) => write!(f, "worker panicked: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<CompileSpecError> for VerifyError {
    fn from(e: CompileSpecError) -> Self {
        VerifyError::Spec(e)
    }
}

impl From<SuccError> for VerifyError {
    fn from(e: SuccError) -> Self {
        match e {
            SuccError::Overflow(o) => VerifyError::Overflow(o),
            other => VerifyError::Succ(other),
        }
    }
}

/// The wave verifier for one compiled specification.
pub struct Verifier {
    spec: CompiledSpec,
    options: VerifyOptions,
    /// The wave-flow slice (identity when `options.slice` is off),
    /// computed once and shared by every prepared check. The flow
    /// report is property-independent, so there is nothing per-check
    /// to recompute.
    slice: std::sync::Arc<crate::slice::SliceInfo>,
}

impl Verifier {
    /// Compile `spec` and build a verifier with default options.
    pub fn new(spec: Spec) -> Result<Verifier, VerifyError> {
        Verifier::with_options(spec, VerifyOptions::default())
    }

    /// Build with explicit options.
    pub fn with_options(spec: Spec, options: VerifyOptions) -> Result<Verifier, VerifyError> {
        let mut compiled = CompiledSpec::compile(spec)?;
        let slice = if options.slice {
            crate::slice::SliceInfo::compute(&mut compiled)
        } else {
            crate::slice::SliceInfo::full(&compiled)
        };
        Ok(Verifier { spec: compiled, options, slice: std::sync::Arc::new(slice) })
    }

    /// The slice driving this verifier's searches (identity under
    /// `--no-slice`).
    pub fn slice(&self) -> &crate::slice::SliceInfo {
        &self.slice
    }

    /// The compiled specification (for inspection and experiment harnesses).
    pub fn spec(&self) -> &CompiledSpec {
        &self.spec
    }

    /// Options (read-only; schedulers build the shared budget pool from
    /// them).
    pub fn options(&self) -> &VerifyOptions {
        &self.options
    }

    /// Options (mutable, so harnesses can toggle heuristics between runs).
    /// `slice` is the one option that only takes effect at construction
    /// ([`Verifier::with_options`]): the flow analyses and mask narrowing
    /// run once while compiling, so toggling it here is a no-op.
    pub fn options_mut(&mut self) -> &mut VerifyOptions {
        &mut self.options
    }

    /// Check a property given as LTL-FO source text.
    pub fn check_str(&self, property: &str) -> Result<Verification, VerifyError> {
        let prop = parse_property(property).map_err(VerifyError::Property)?;
        self.check(&prop)
    }

    /// Check a parsed property: returns `Holds`, `Violated` with a
    /// counterexample pseudorun, or `Unknown` on budget exhaustion.
    ///
    /// The nested DFS recurses once per pseudorun step, so the search runs
    /// on a dedicated thread with a large stack.
    pub fn check(&self, property: &Property) -> Result<Verification, VerifyError> {
        self.check_traced(property, &mut NoopTracer)
    }

    /// [`Verifier::check`] with a [`SearchTracer`] receiving the search's
    /// event stream. `check` itself delegates here with the no-op tracer,
    /// which monomorphizes every emission site away — verdicts, lassos and
    /// stats are identical either way.
    pub fn check_traced<T: SearchTracer + Send>(
        &self,
        property: &Property,
        tracer: &mut T,
    ) -> Result<Verification, VerifyError> {
        self.check_instrumented(property, tracer, &mut NoopSpans)
    }

    /// [`Verifier::check`] with a [`SpanSink`] recording the hierarchical
    /// span tree and per-query cost attribution. The search is identical
    /// to the unprofiled one — verdicts, lassos and deterministic stats
    /// are byte-for-byte the same; only `Stats::queries` and the span
    /// tree are extra.
    pub fn check_profiled<P: SpanSink + Send>(
        &self,
        property: &Property,
        spans: &mut P,
    ) -> Result<Verification, VerifyError> {
        self.check_instrumented(property, &mut NoopTracer, spans)
    }

    /// The fully general entry point: both a tracer and a span sink. The
    /// no-op implementations of either monomorphize their emission sites
    /// away, so `check`, `check_traced` and `check_profiled` all compile
    /// down to exactly the instrumentation they asked for.
    pub fn check_instrumented<T: SearchTracer + Send, P: SpanSink + Send>(
        &self,
        property: &Property,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<Verification, VerifyError> {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("wave-search".into())
                .stack_size(512 << 20)
                .spawn_scoped(scope, || self.check_inner(property, tracer, spans))
                .expect("spawn search thread")
                .join()
                .expect("search thread panicked")
        })
    }

    fn check_inner<T: SearchTracer, P: SpanSink>(
        &self,
        property: &Property,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<Verification, VerifyError> {
        let start = Instant::now();
        let prepared = self.prepare(property)?;

        // one shared pool for the whole check: each unit draws on
        // whatever the previous units left in it
        let limits = SearchLimits {
            pool: self.options.budget_pool(start),
            cancel: self.options.cancel.clone(),
        };
        let mut stats = Stats::default();
        let mut verdict = Verdict::Holds;
        for unit in 0..prepared.num_units() {
            if P::ENABLED {
                spans.enter("unit", unit as u64);
            }
            let outcome = prepared.run_unit_instrumented(unit, None, &limits, tracer, spans);
            if P::ENABLED {
                spans.exit();
            }
            let outcome = outcome?;
            stats.merge(&outcome.stats);
            match outcome.result {
                SearchResult::Clean => {}
                SearchResult::Violation(ce) => {
                    verdict = Verdict::Violated(ce);
                    break;
                }
                SearchResult::Exhausted(b) => {
                    verdict = Verdict::Unknown(b);
                    break;
                }
            }
        }

        stats.elapsed = start.elapsed();
        // stamped once per check (units leave these at zero, so the merge
        // above cannot multiply-count them)
        stats.profile.slice_rules_removed = self.slice.rules_removed;
        stats.profile.slice_relations_removed = self.slice.relations_removed;
        stats.profile.flow_dead_rules = self.slice.dead_rules;
        Ok(Verification { verdict, stats, complete: prepared.complete })
    }

    /// Compile `property` against the spec and decompose the check into
    /// independent work units (one per `C_∃` assignment). [`Verifier::check`]
    /// runs the units in order on one thread; the `wave-svc` scheduler
    /// distributes them (and core sub-ranges of large units) over a worker
    /// pool. Either way each unit's search is deterministic, so any
    /// schedule that respects unit order when reducing outcomes yields the
    /// sequential verdict.
    pub fn prepare(&self, property: &Property) -> Result<PreparedCheck<'_>, VerifyError> {
        let spec = &self.spec;

        // step 1: φ_aux and the automaton for the NEGATED property
        let body = property.body.group_fo();
        let extraction = extract(&body);
        if extraction.components.len() > 64 {
            return Err(VerifyError::TooManyComponents(extraction.components.len()));
        }
        let negated = nnf(&extraction.aux, true);
        let buchi = Buchi::from_nnf(&negated, extraction.components.len());

        // completeness: spec and property both input-bounded
        let kinds = spec.kinds();
        let property_ib =
            extraction.components.iter().all(|f| check_input_bounded(f, &kinds).is_ok());
        let complete = spec.is_input_bounded() && property_ib;

        // session symbols: spec constants + property constants + params + pools
        let mut symbols = spec.symbols.clone();
        let mut c_values: Vec<Value> = spec.constants.clone();
        for f in &extraction.components {
            for c in fo_constants(f) {
                let v = symbols.constant(&c);
                if !c_values.contains(&v) {
                    c_values.push(v);
                }
            }
        }
        let params: Vec<Value> =
            (0..property.univ_vars.len()).map(|i| symbols.constant(&format!("?{i}"))).collect();
        let pools = build_pools(spec, &mut symbols);

        // step 2: C_∃ assignments (relevance-reduced)
        let flow0 = analyze(&spec.spec, &extraction.components);
        let relevant =
            relevant_constants(&property.univ_vars, &extraction.components, &flow0, &symbols);
        let all_assignments =
            assignments(&property.univ_vars, &relevant, &params, self.options.param_mode);

        // relevance pruning: the relations a property mentions do not
        // depend on the parameter instantiation, so compute once
        let visibility = Visibility::compute(spec, &extraction.components);

        Ok(PreparedCheck {
            verifier: self,
            buchi,
            components: extraction.components,
            symbols,
            base_c_values: c_values,
            pools,
            assignments: all_assignments,
            visibility,
            slice: std::sync::Arc::clone(&self.slice),
            complete,
        })
    }

    /// Instantiate the property components under one assignment and run the
    /// per-assignment dataflow analysis.
    fn instantiate(
        &self,
        assignment: &Assignment,
        base_c: &[Value],
        components: &[Formula],
        symbols: &wave_relalg::SymbolTable,
    ) -> (Vec<Value>, Vec<Formula>, wave_spec::Dataflow) {
        let subst = assignment.substitution(symbols);
        let instantiated: Vec<Formula> = components.iter().map(|f| f.substitute(&subst)).collect();
        let mut c_values = base_c.to_vec();
        for v in assignment.c_exists() {
            if !c_values.contains(&v) {
                c_values.push(v);
            }
        }
        let flow = analyze(&self.spec.spec, &instantiated);
        (c_values, instantiated, flow)
    }

    /// Re-validate a counterexample returned by [`Verifier::check`] for
    /// `property`: replays every step against the successor relation and
    /// the property automaton (the Section 7 genuineness check). Returns
    /// `Ok(())` when the pseudorun is a faithful violating lasso.
    pub fn validate_counterexample(
        &self,
        property: &Property,
        ce: &CounterExample,
    ) -> Result<(), crate::replay::ReplayError> {
        let spec = &self.spec;
        let body = property.body.group_fo();
        let extraction = extract(&body);
        let negated = nnf(&extraction.aux, true);
        let buchi = Buchi::from_nnf(&negated, extraction.components.len());

        let mut symbols = spec.symbols.clone();
        let mut c_values: Vec<Value> = spec.constants.clone();
        for f in &extraction.components {
            for c in fo_constants(f) {
                let v = symbols.constant(&c);
                if !c_values.contains(&v) {
                    c_values.push(v);
                }
            }
        }
        // re-intern the recorded parameter names (they were interned as
        // `?i` constants during the original check)
        for i in 0..property.univ_vars.len() {
            symbols.constant(&format!("?{i}"));
        }
        let pools = build_pools(spec, &mut symbols);
        let assignment = Assignment { values: ce.assignment.clone() };
        let (ctx_c_values, components, flow) =
            self.instantiate(&assignment, &c_values, &extraction.components, &symbols);
        let visibility = Visibility::compute(spec, &extraction.components);
        let mut sorted_c = ctx_c_values;
        sorted_c.sort_unstable();
        let base = core_instance(spec, &ce.core);
        let engine =
            QueryEngine::build(spec, &base, self.options.use_plans && !self.options.naive_joins);
        let ctx = SearchCtx {
            spec,
            symbols: &symbols,
            pools: &pools,
            flow: &flow,
            c_values: sorted_c,
            base,
            pruning: self.options.pruning,
            heuristic2: self.options.heuristic2,
            use_plans: self.options.use_plans,
            visibility,
            slice: std::sync::Arc::clone(&self.slice),
            engine,
        };
        crate::replay::replay(&ctx, &buchi, &components, ce)
    }

    /// Render a counterexample for human consumption.
    pub fn render_counterexample(&self, ce: &CounterExample) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let symbols = &self.spec.symbols;
        let facts = |facts: &crate::config::Facts| -> String {
            facts
                .iter()
                .map(|(rel, t)| {
                    let vals: Vec<String> = t
                        .values()
                        .iter()
                        .map(|&v| {
                            if v.index() < symbols.len() {
                                symbols.display(v)
                            } else {
                                format!("~{}", v.0)
                            }
                        })
                        .collect();
                    format!("{}({})", self.spec.schema.name(*rel), vals.join(", "))
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        for (i, step) in ce.steps.iter().enumerate() {
            let marker = if i == ce.cycle_start { "↻ " } else { "  " };
            let page = &self.spec.page(step.config.page).name;
            let _ = writeln!(
                out,
                "{marker}step {i}: page {page}  input[{}]  state[{}]  actions[{}]",
                facts(&step.config.input),
                facts(&step.config.state),
                facts(&step.config.actions),
            );
        }
        let _ = writeln!(out, "  (cycle repeats from step {})", ce.cycle_start);
        out
    }
}

/// One property compiled against one spec, decomposed into independent
/// work units. Unit `i` is the search over all Heuristic-1 cores of the
/// `i`-th `C_∃` assignment; [`PreparedCheck::run_unit`] can further
/// restrict a unit to a sub-range of its cores, so a scheduler can split
/// a large unit across workers. All fields are immutable shared state —
/// the type is `Sync` and units may run concurrently on scoped threads.
pub struct PreparedCheck<'v> {
    verifier: &'v Verifier,
    buchi: Buchi,
    /// Uninstantiated FO components of the property.
    components: Vec<Formula>,
    symbols: SymbolTable,
    /// `C_W` plus the property's own constants (before `C_∃`).
    base_c_values: Vec<Value>,
    pools: Vec<crate::domain::PagePool>,
    assignments: Vec<Assignment>,
    visibility: Visibility,
    slice: std::sync::Arc<crate::slice::SliceInfo>,
    /// Both spec and property are input-bounded (Theorem 3.3 / 3.8).
    pub complete: bool,
}

/// What one work unit produced: the search outcome over the scanned
/// cores, plus that unit's share of the measurement columns.
#[derive(Clone, Debug)]
pub struct UnitOutcome {
    pub result: SearchResult,
    pub stats: Stats,
}

impl PreparedCheck<'_> {
    /// Number of independent work units (`C_∃` assignments).
    pub fn num_units(&self) -> usize {
        self.assignments.len()
    }

    /// The slice driving this check's searches (identity under
    /// `--no-slice`). External schedulers merging [`UnitOutcome`]s stamp
    /// the per-check slice counters from here, exactly like
    /// [`Verifier::check`] does — units leave them at zero.
    pub fn slice(&self) -> &crate::slice::SliceInfo {
        &self.slice
    }

    /// The `C_∃` assignment a unit instantiates.
    pub fn assignment(&self, unit: usize) -> &Assignment {
        &self.assignments[unit]
    }

    /// Number of database cores unit `unit` scans (for split decisions).
    pub fn core_count(&self, unit: usize) -> Result<u64, VerifyError> {
        let (ctx_c_values, _, flow) = self.instantiate(unit);
        let cores = core_universe(
            &self.verifier.spec,
            &flow,
            &self.symbols,
            &ctx_c_values,
            self.verifier.options.heuristic1,
        )
        .map_err(VerifyError::Overflow)?;
        Ok(cores.subset_count())
    }

    fn instantiate(&self, unit: usize) -> (Vec<Value>, Vec<Formula>, Dataflow) {
        self.verifier.instantiate(
            &self.assignments[unit],
            &self.base_c_values,
            &self.components,
            &self.symbols,
        )
    }

    /// Run one work unit: scan the cores of assignment `unit` (all of
    /// them, or the bitmap-counter sub-range `cores`) in deterministic
    /// order, stopping at the first violation or budget exhaustion.
    ///
    /// The scan is a pure function of `(unit, cores)` and the verifier
    /// options — two runs over the same range produce byte-identical
    /// outcomes, which is what lets a parallel schedule reproduce the
    /// sequential verdict exactly.
    pub fn run_unit(
        &self,
        unit: usize,
        cores: Option<Range<u64>>,
        limits: &SearchLimits,
    ) -> Result<UnitOutcome, VerifyError> {
        self.run_unit_traced(unit, cores, limits, &mut NoopTracer)
    }

    /// [`PreparedCheck::run_unit`] with a tracer attached. The no-op
    /// tracer monomorphizes to the untraced scan, so `run_unit` (and the
    /// parallel scheduler built on it) pays nothing for this hook.
    pub fn run_unit_traced<T: SearchTracer>(
        &self,
        unit: usize,
        cores: Option<Range<u64>>,
        limits: &SearchLimits,
        tracer: &mut T,
    ) -> Result<UnitOutcome, VerifyError> {
        self.run_unit_instrumented(unit, cores, limits, tracer, &mut NoopSpans)
    }

    /// [`PreparedCheck::run_unit_traced`] with a [`SpanSink`] attached as
    /// well. Both hooks monomorphize away when no-op.
    pub fn run_unit_instrumented<T: SearchTracer, P: SpanSink>(
        &self,
        unit: usize,
        cores: Option<Range<u64>>,
        limits: &SearchLimits,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<UnitOutcome, VerifyError> {
        match &self.verifier.options.state_store {
            StateStoreKind::Interned => {
                self.run_unit_in(unit, cores, limits, &mut InternedStore::new(), tracer, spans)
            }
            StateStoreKind::ByteKeys => {
                self.run_unit_in(unit, cores, limits, &mut ByteStore::new(), tracer, spans)
            }
            StateStoreKind::Tiered(params) => {
                self.run_unit_in(unit, cores, limits, &mut TieredStore::new(params), tracer, spans)
            }
        }
    }

    /// The core scan over an explicit state store (one store per unit:
    /// the interned arena is shared by all its cores, the visited set is
    /// cleared between cores). Public so drivers that must keep one
    /// store alive across several core-range chunks of the same unit —
    /// the checkpoint driver in [`crate::checkpoint`] — can run the
    /// chunks without re-interning the arena from scratch each time.
    pub fn run_unit_in<S: StateStore, T: SearchTracer, P: SpanSink>(
        &self,
        unit: usize,
        cores: Option<Range<u64>>,
        limits: &SearchLimits,
        store: &mut S,
        tracer: &mut T,
        spans: &mut P,
    ) -> Result<UnitOutcome, VerifyError> {
        let start = Instant::now();
        let spec = &self.verifier.spec;
        let options = &self.verifier.options;
        let assignment = &self.assignments[unit];
        let (ctx_c_values, components, flow) = self.instantiate(unit);

        // step 3: Heuristic-1 cores
        let universe = core_universe(spec, &flow, &self.symbols, &ctx_c_values, options.heuristic1)
            .map_err(VerifyError::Overflow)?;
        let range = match cores {
            Some(r) => r.start.min(universe.subset_count())..r.end.min(universe.subset_count()),
            None => 0..universe.subset_count(),
        };

        let mut sorted_c = ctx_c_values.clone();
        sorted_c.sort_unstable();
        // when a unit is split into core ranges, the range starting at
        // bitmap 0 owns the unit's entry in the assignment count, so the
        // chunked merge still counts each C_∃ assignment once
        let mut stats = Stats { assignments: u64::from(range.start == 0), ..Stats::default() };
        let mut result = SearchResult::Clean;
        // the store may be shared across several calls (checkpoint
        // chunks), so tier counters fold as deltas from this baseline
        let mut tier_base = store.tier_counters();
        let mut spill_ns_base = store.spill_timers();

        for bitmap in range {
            if limits.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                result = SearchResult::Exhausted(Budget::Cancelled);
                break;
            }
            let core = universe.decode(bitmap);
            stats.cores += 1;
            if T::ENABLED {
                tracer.event(TraceEvent::Core { unit: unit as u32, core: bitmap });
            }
            if P::ENABLED {
                spans.enter("core", bitmap);
            }
            store.clear_visits();
            let base = core_instance(spec, &core);
            let qengine = QueryEngine::build_profiled(
                spec,
                &base,
                options.use_plans && !options.naive_joins,
                P::ENABLED,
            );
            let ctx = SearchCtx {
                spec,
                symbols: &self.symbols,
                pools: &self.pools,
                flow: &flow,
                c_values: sorted_c.clone(),
                base,
                pruning: options.pruning,
                heuristic2: options.heuristic2,
                use_plans: options.use_plans,
                visibility: self.visibility.clone(),
                slice: std::sync::Arc::clone(&self.slice),
                engine: qengine,
            };
            // every core's search leases from the same shared pool, so
            // no per-core budget arithmetic is needed here
            let engine = Ndfs::new(
                &ctx,
                &self.buchi,
                &components,
                store,
                &mut *tracer,
                &mut *spans,
                limits.clone(),
            );
            let run_out = engine.run();
            if P::ENABLED {
                // attribute this core's spill/compaction I/O (measured
                // inside the store, no extra clock reads per probe) as
                // leaf frames under the core frame, then close it —
                // balanced even on the error path below
                let (spill_ns, compact_ns) = store.spill_timers();
                if spill_ns > spill_ns_base.0 {
                    spans.leaf_ns("spill", NO_INDEX, 1, spill_ns - spill_ns_base.0);
                }
                if compact_ns > spill_ns_base.1 {
                    spans.leaf_ns("compact", NO_INDEX, 1, compact_ns - spill_ns_base.1);
                }
                spill_ns_base = (spill_ns, compact_ns);
                spans.exit();
            }
            let (search_result, search_stats) = run_out?;
            stats.max_run_len = stats.max_run_len.max(search_stats.max_run_len);
            stats.configs += search_stats.configs;
            stats.max_trie = stats.max_trie.max(store.max_visited());
            let (resident, spilled) = store.visited_breakdown();
            stats.max_resident = stats.max_resident.max(resident);
            stats.max_spilled = stats.max_spilled.max(spilled);
            let tier = store.tier_counters();
            if tier != tier_base {
                stats.profile.spill_pairs += tier.spill_pairs - tier_base.spill_pairs;
                stats.profile.spill_segments += tier.spill_segments - tier_base.spill_segments;
                stats.profile.spill_compactions += tier.compactions - tier_base.compactions;
                stats.profile.bloom_skips += tier.bloom_skips - tier_base.bloom_skips;
                stats.profile.cold_probes += tier.cold_probes - tier_base.cold_probes;
                if T::ENABLED && tier.spill_pairs > tier_base.spill_pairs {
                    tracer.event(TraceEvent::Spill {
                        unit: unit as u32,
                        core: bitmap,
                        pairs: tier.spill_pairs - tier_base.spill_pairs,
                        segments: tier.spill_segments - tier_base.spill_segments,
                        compactions: tier.compactions - tier_base.compactions,
                    });
                }
                if T::ENABLED && tier.compactions > tier_base.compactions {
                    tracer.event(TraceEvent::Compact {
                        unit: unit as u32,
                        core: bitmap,
                        compactions: tier.compactions - tier_base.compactions,
                        segments: tier.spill_segments - tier_base.spill_segments,
                    });
                }
                tier_base = tier;
            }
            stats.profile.add(&search_stats.profile);
            stats.profile.memo_hits += ctx.engine.memo_hits();
            stats.profile.memo_misses += ctx.engine.memo_misses();
            stats.profile.join_builds += ctx.engine.join_builds();
            if T::ENABLED {
                let (hits, misses) = (ctx.engine.memo_hits(), ctx.engine.memo_misses());
                if hits + misses > 0 {
                    tracer.event(TraceEvent::Memo {
                        unit: unit as u32,
                        core: bitmap,
                        hits,
                        misses,
                        evictions: ctx.engine.memo_evictions(),
                    });
                }
                let builds = ctx.engine.join_builds();
                if builds > 0 {
                    tracer.event(TraceEvent::JoinBuild { unit: unit as u32, core: bitmap, builds });
                }
            }
            if P::ENABLED {
                for q in ctx.engine.query_costs() {
                    match stats.queries.iter_mut().find(|c| c.qid == q.qid) {
                        Some(c) => c.add(&q),
                        None => stats.queries.push(q),
                    }
                }
            }
            match search_result {
                SearchResult::Clean => {}
                SearchResult::Violation(mut ce) => {
                    stats.max_run_len = ce.steps.len().max(stats.max_run_len);
                    ce.core = core;
                    ce.assignment = assignment.values.clone();
                    result = SearchResult::Violation(ce);
                    break;
                }
                SearchResult::Exhausted(b) => {
                    result = SearchResult::Exhausted(b);
                    break;
                }
            }
        }

        stats.elapsed = start.elapsed();
        stats.queries.sort_by_key(|c| c.qid);
        Ok(UnitOutcome { result, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_spec::parse_spec;

    /// Two pages; the user may click "go" to move A → B, B always returns
    /// to A. Staying on A forever (never clicking) is a valid run.
    fn pingpong() -> Verifier {
        Verifier::new(
            parse_spec(
                r#"
            spec pingpong {
              inputs { button(x); }
              home A;
              page A {
                inputs { button }
                options button(x) <- x = "go";
                target B <- button("go");
              }
              page B { target A <- true; }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    /// A login application: `logged` is set only on a correct password,
    /// and the greet action fires only for logged users.
    fn login() -> Verifier {
        Verifier::new(
            parse_spec(
                r#"
            spec login {
              database { user(n, p); }
              state { logged(u); }
              action { greet(u); }
              inputs { button(x); constant uname; constant pass; }
              home HP;
              page HP {
                inputs { button, uname, pass }
                options button(x) <- x = "login";
                insert logged(u) <- uname(u) & (exists q: pass(q) & user(u, q))
                                    & button("login");
                # the transition checks the credentials directly: state
                # atoms may not carry input-bounded variables (Section 2.1)
                target CP <- exists u: uname(u) & (exists q: pass(q) & user(u, q))
                             & button("login");
              }
              page CP {
                inputs { button }
                options button(x) <- x = "logout";
                action greet(u) <- logged(u) & button("logout");
                delete logged(u) <- logged(u) & button("logout");
                target HP <- button("logout");
              }
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn start_page_property_holds() {
        let v = pingpong().check_str("@A").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
        assert!(v.complete);
    }

    #[test]
    fn transitions_are_constrained() {
        let v = pingpong().check_str("G (@A -> X (@A | @B))").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
        // and the too-strong variant is refuted
        let v2 = pingpong().check_str("G (@A -> X @B)").unwrap();
        assert!(v2.verdict.violated(), "{v2:?}");
    }

    #[test]
    fn eventually_b_is_violated_by_the_idle_run() {
        // the user may never click: F @B does not hold on all runs
        let v = pingpong().check_str("F @B").unwrap();
        match &v.verdict {
            Verdict::Violated(ce) => {
                // counterexample: an A-loop with no "go" click
                assert!(ce.cycle_start < ce.steps.len());
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn b_page_always_returns() {
        let v = pingpong().check_str("G (@B -> X @A)").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
    }

    #[test]
    fn b_is_reachable() {
        // "G !@B" must be violated: some run does reach B
        let v = pingpong().check_str("G !@B").unwrap();
        assert!(v.verdict.violated(), "{v:?}");
    }

    #[test]
    fn greet_only_after_login() {
        // whenever greet(u) fires, logged(u) holds — a data-aware check
        // beyond propositional abstraction (Section 1's motivation)
        let v = login().check_str("forall u: G (greet(u) -> logged(u))").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
        assert!(v.complete, "login spec and property are input-bounded");
    }

    #[test]
    fn credentials_strictly_precede_customer_page() {
        // reaching CP requires a uname input at the strictly earlier step
        let v = login().check_str("(exists u: uname(u)) B @CP").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
    }

    #[test]
    fn before_operator_allows_simultaneity() {
        // logged(u) and greet(u) can first hold at the same step (greet
        // fires on the logout click that reads the freshly set state);
        // the paper's non-strict B accepts that, so the property holds
        let v = login().check_str("forall u: logged(u) B greet(u)").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
        // …but an input strictly after cannot precede: greet before logged
        // is refuted (greet implies logged at the same step, logged can
        // hold without greet earlier — pick a claim that must fail):
        let v2 = login().check_str("(exists u: greet(u)) B @CP").unwrap();
        assert!(v2.verdict.violated(), "greet cannot precede reaching CP: {v2:?}");
    }

    #[test]
    fn customer_page_reachable_only_via_login() {
        // some run reaches CP (the verifier must synthesize a database
        // where user(~uname, ~pass) exists)
        let v = login().check_str("G !@CP").unwrap();
        assert!(v.verdict.violated(), "{v:?}");
    }

    #[test]
    fn wrong_claim_greet_never_fires_is_refuted() {
        let v = login().check_str("forall u: G !greet(u)").unwrap();
        assert!(v.verdict.violated(), "{v:?}");
    }

    #[test]
    fn heuristics_do_not_change_verdicts_on_mini_specs() {
        for property in ["F @B", "G (@A -> X (@A | @B))", "G !@B"] {
            let baseline = pingpong().check_str(property).unwrap();
            for (h1, h2) in [(false, true), (true, false), (false, false)] {
                let mut verifier = pingpong();
                verifier.options_mut().heuristic1 = h1;
                verifier.options_mut().heuristic2 = h2;
                let v = verifier.check_str(property).unwrap();
                assert_eq!(
                    baseline.verdict.holds(),
                    v.verdict.holds(),
                    "{property} with h1={h1} h2={h2}"
                );
            }
        }
    }

    #[test]
    fn interpreter_and_plans_agree() {
        for property in ["forall u: G (greet(u) -> logged(u))", "G !@CP"] {
            let with_plans = login().check_str(property).unwrap();
            let mut verifier = login();
            verifier.options_mut().use_plans = false;
            let interp = verifier.check_str(property).unwrap();
            assert_eq!(with_plans.verdict.holds(), interp.verdict.holds(), "{property}");
        }
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let mut verifier = login();
        verifier.options_mut().max_steps = Some(1);
        let v = verifier.check_str("forall u: G (greet(u) -> logged(u))").unwrap();
        assert!(matches!(v.verdict, Verdict::Unknown(_)), "{v:?}");
    }

    #[test]
    fn exhaustive_equality_mode_agrees_here() {
        let mut verifier = login();
        verifier.options_mut().param_mode = ParamMode::ExhaustiveEquality;
        let v = verifier.check_str("forall u: G (greet(u) -> logged(u))").unwrap();
        assert!(v.verdict.holds(), "{v:?}");
    }

    #[test]
    fn counterexample_renders() {
        let verifier = pingpong();
        let v = verifier.check_str("G !@B").unwrap();
        let Verdict::Violated(ce) = &v.verdict else { panic!("expected violation") };
        let text = verifier.render_counterexample(ce);
        assert!(text.contains("page A"), "{text}");
        assert!(text.contains("cycle repeats"), "{text}");
    }

    #[test]
    fn non_input_bounded_property_marks_incomplete() {
        // quantifier over a database relation
        let v = login().check_str("G (forall u, q: user(u, q) -> logged(u)) | true").unwrap();
        assert!(!v.complete);
        assert!(v.verdict.holds(), "trivially true property");
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use wave_ltl::parse_property;
    use wave_spec::parse_spec;

    fn spec() -> wave_spec::Spec {
        parse_spec(
            r#"
            spec replaytest {
              database { stock(item); }
              state { seen(item); }
              inputs { pick(x); button(x); }
              home A;
              page A {
                inputs { pick, button }
                options button(x) <- x = "go";
                options pick(x) <- stock(x);
                insert seen(x) <- pick(x) & button("go");
                target B <- (exists x: pick(x)) & button("go");
              }
              page B { target A <- true; }
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn counterexamples_replay_cleanly() {
        let verifier = Verifier::new(spec()).unwrap();
        for text in ["G !@B", "F @B", "forall x: G !seen(x)"] {
            let prop = parse_property(text).unwrap();
            let v = verifier.check(&prop).unwrap();
            let Verdict::Violated(ce) = &v.verdict else { panic!("{text}: expected a violation") };
            verifier
                .validate_counterexample(&prop, ce)
                .unwrap_or_else(|e| panic!("{text}: replay failed: {e}"));
        }
    }

    #[test]
    fn tampered_counterexamples_are_rejected() {
        let verifier = Verifier::new(spec()).unwrap();
        let prop = parse_property("G !@B").unwrap();
        let v = verifier.check(&prop).unwrap();
        let Verdict::Violated(ce) = v.verdict else { panic!("expected violation") };

        // flip an assignment bit
        let mut bad = ce.clone();
        bad.steps[0].assignment ^= 1;
        assert!(matches!(
            verifier.validate_counterexample(&prop, &bad),
            Err(crate::replay::ReplayError::AssignmentMismatch { .. })
        ));

        // break the cycle index
        let mut bad = ce.clone();
        bad.cycle_start = bad.steps.len();
        assert!(matches!(
            verifier.validate_counterexample(&prop, &bad),
            Err(crate::replay::ReplayError::BadCycleStart { .. })
        ));

        // inject a fact that no successor computation could produce: the
        // tampered configuration is not a successor of its predecessor
        // (and is not a start configuration if it is step 0)
        let mut bad = ce;
        let last = bad.steps.len() - 1;
        let seen = verifier.spec().schema.lookup("seen").unwrap();
        bad.steps[last].config.state = std::sync::Arc::new(crate::config::canonicalize(
            bad.steps[last]
                .config
                .state
                .iter()
                .cloned()
                .chain(std::iter::once((
                    seen,
                    wave_relalg::Tuple::from([wave_relalg::Value(9999)]),
                )))
                .collect(),
        ));
        let result = verifier.validate_counterexample(&prop, &bad);
        assert!(result.is_err(), "tampered run must not replay");
    }
}
