//! Property-based validation of the LTL→Büchi translation: on randomly
//! generated propositional formulas and random lasso words, the automaton
//! must accept exactly the words the direct lasso semantics satisfies.

use proptest::prelude::*;
use wave_ltl::{Buchi, Nnf};

/// Random NNF formulas over two propositions, depth-bounded.
fn nnf_strategy() -> impl Strategy<Value = Nnf> {
    let leaf = prop_oneof![
        Just(Nnf::True),
        Just(Nnf::False),
        (0usize..2, any::<bool>()).prop_map(|(id, positive)| Nnf::Lit { id, positive }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Nnf::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Nnf::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Nnf::X(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Nnf::U(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Nnf::R(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Language equivalence on random lasso words.
    #[test]
    fn automaton_matches_lasso_semantics(
        f in nnf_strategy(),
        prefix in prop::collection::vec(0u64..4, 0..3),
        cycle in prop::collection::vec(0u64..4, 1..3),
    ) {
        let b = Buchi::from_nnf(&f, 2);
        let expected = f.eval_lasso(&prefix, &cycle);
        let got = b.accepts_lasso(&prefix, &cycle);
        prop_assert_eq!(expected, got, "formula {} word {:?}({:?})^w", f, prefix, cycle);
    }

    /// The automaton of φ and of ¬φ partition every lasso word.
    #[test]
    fn formula_and_negation_partition(
        f in nnf_strategy(),
        prefix in prop::collection::vec(0u64..4, 0..2),
        cycle in prop::collection::vec(0u64..4, 1..3),
    ) {
        let pos = Buchi::from_nnf(&f, 2);
        let neg_formula = negate(&f);
        let neg = Buchi::from_nnf(&neg_formula, 2);
        let a = pos.accepts_lasso(&prefix, &cycle);
        let b = neg.accepts_lasso(&prefix, &cycle);
        prop_assert!(a ^ b, "φ and ¬φ must decide every word exactly once: {}", f);
    }
}

/// NNF negation (dualize everything).
fn negate(f: &Nnf) -> Nnf {
    match f {
        Nnf::True => Nnf::False,
        Nnf::False => Nnf::True,
        Nnf::Lit { id, positive } => Nnf::Lit { id: *id, positive: !positive },
        Nnf::And(a, b) => Nnf::Or(Box::new(negate(a)), Box::new(negate(b))),
        Nnf::Or(a, b) => Nnf::And(Box::new(negate(a)), Box::new(negate(b))),
        Nnf::X(a) => Nnf::X(Box::new(negate(a))),
        Nnf::U(a, b) => Nnf::R(Box::new(negate(a)), Box::new(negate(b))),
        Nnf::R(a, b) => Nnf::U(Box::new(negate(a)), Box::new(negate(b))),
    }
}
