//! LTL → Büchi automaton translation.
//!
//! The paper uses the external `ltl2ba` tool, which implements the
//! on-the-fly tableau construction of Gerth–Peled–Vardi–Wolper (GPVW,
//! PSTV'95) — the same algorithm implemented here from scratch:
//!
//! 1. expand the NNF formula into a graph of tableau nodes (a generalized
//!    Büchi automaton with one acceptance set per `U`-subformula),
//! 2. degeneralize with the standard counter construction,
//! 3. simplify: drop states that cannot contribute an accepting run, then
//!    merge bisimilar states.
//!
//! The simplification step reproduces the small automata `ltl2ba` emits;
//! in particular `P1 U P2` yields the two-state automaton of the paper's
//! Figure 1.

use crate::props::Nnf;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A transition guard: a conjunction of literals over propositions,
/// encoded as bitmasks (must-be-true, must-be-false). At most 64
/// propositions per property — far beyond anything the paper's properties
/// need.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label {
    pub pos: u64,
    pub neg: u64,
}

impl Label {
    /// The unconstrained guard (`true`).
    pub const TRUE: Label = Label { pos: 0, neg: 0 };

    /// Does the truth assignment `assign` (bit `i` = proposition `i`)
    /// satisfy this guard?
    #[inline]
    pub fn satisfies(&self, assign: u64) -> bool {
        (assign & self.pos) == self.pos && (assign & self.neg) == 0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "true");
        }
        let mut first = true;
        for i in 0..64 {
            if self.pos >> i & 1 == 1 {
                if !first {
                    write!(f, " & ")?;
                }
                write!(f, "P{i}")?;
                first = false;
            }
            if self.neg >> i & 1 == 1 {
                if !first {
                    write!(f, " & ")?;
                }
                write!(f, "!P{i}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// A Büchi automaton over proposition assignments.
#[derive(Clone, Debug)]
pub struct Buchi {
    /// Number of propositions the guards range over.
    pub nprops: usize,
    /// Initial state index.
    pub initial: usize,
    /// Per-state acceptance flag.
    pub accepting: Vec<bool>,
    /// Per-state outgoing transitions.
    pub trans: Vec<Vec<(Label, usize)>>,
}

// ---------------------------------------------------------------------
// GPVW tableau nodes
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Node {
    incoming: BTreeSet<usize>,
    new: BTreeSet<Nnf>,
    old: BTreeSet<Nnf>,
    next: BTreeSet<Nnf>,
}

struct Tableau {
    /// Finished nodes keyed by id (dense). Id 0 is the virtual init node.
    nodes: Vec<Node>,
}

const INIT: usize = 0;

impl Tableau {
    fn build(phi: &Nnf) -> Tableau {
        let mut t = Tableau {
            nodes: vec![Node {
                incoming: BTreeSet::new(),
                new: BTreeSet::new(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            }],
        };
        let start = Node {
            incoming: BTreeSet::from([INIT]),
            new: BTreeSet::from([phi.clone()]),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
        };
        t.expand(start);
        t
    }

    fn expand(&mut self, mut node: Node) {
        let Some(eta) = node.new.iter().next().cloned() else {
            // node fully processed: merge with an existing node or add
            for nd in self.nodes.iter_mut().skip(1) {
                if nd.old == node.old && nd.next == node.next {
                    nd.incoming.extend(node.incoming.iter().copied());
                    return;
                }
            }
            let id = self.nodes.len();
            let next = node.next.clone();
            self.nodes.push(node);
            let succ = Node {
                incoming: BTreeSet::from([id]),
                new: next,
                old: BTreeSet::new(),
                next: BTreeSet::new(),
            };
            self.expand(succ);
            return;
        };
        node.new.remove(&eta);
        match &eta {
            Nnf::False => { /* contradiction: drop the node */ }
            Nnf::True => self.expand(node),
            Nnf::Lit { id, positive } => {
                let negated = Nnf::Lit { id: *id, positive: !positive };
                if node.old.contains(&negated) {
                    return; // contradiction
                }
                node.old.insert(eta);
                self.expand(node);
            }
            Nnf::And(a, b) => {
                node.old.insert(eta.clone());
                for part in [a.as_ref(), b.as_ref()] {
                    if !node.old.contains(part) {
                        node.new.insert(part.clone());
                    }
                }
                self.expand(node);
            }
            Nnf::X(x) => {
                node.old.insert(eta.clone());
                node.next.insert((**x).clone());
                self.expand(node);
            }
            Nnf::Or(a, b) => {
                let mut n1 = node.clone();
                n1.old.insert(eta.clone());
                if !n1.old.contains(a.as_ref()) {
                    n1.new.insert((**a).clone());
                }
                let mut n2 = node;
                n2.old.insert(eta.clone());
                if !n2.old.contains(b.as_ref()) {
                    n2.new.insert((**b).clone());
                }
                self.expand(n1);
                self.expand(n2);
            }
            Nnf::U(a, b) => {
                // μ U ψ ≡ ψ ∨ (μ ∧ X(μ U ψ))
                let mut n1 = node.clone();
                n1.old.insert(eta.clone());
                if !n1.old.contains(a.as_ref()) {
                    n1.new.insert((**a).clone());
                }
                n1.next.insert(eta.clone());
                let mut n2 = node;
                n2.old.insert(eta.clone());
                if !n2.old.contains(b.as_ref()) {
                    n2.new.insert((**b).clone());
                }
                self.expand(n1);
                self.expand(n2);
            }
            Nnf::R(a, b) => {
                // μ R ψ ≡ (μ ∧ ψ) ∨ (ψ ∧ X(μ R ψ))
                let mut n1 = node.clone();
                n1.old.insert(eta.clone());
                if !n1.old.contains(b.as_ref()) {
                    n1.new.insert((**b).clone());
                }
                n1.next.insert(eta.clone());
                let mut n2 = node;
                n2.old.insert(eta.clone());
                for part in [a.as_ref(), b.as_ref()] {
                    if !n2.old.contains(part) {
                        n2.new.insert(part.clone());
                    }
                }
                self.expand(n1);
                self.expand(n2);
            }
        }
    }
}

/// Collect the `U`-subformulas of the formula (the acceptance sets of the
/// generalized automaton).
fn until_subformulas(f: &Nnf, out: &mut Vec<Nnf>) {
    match f {
        Nnf::U(a, b) => {
            if !out.contains(f) {
                out.push(f.clone());
            }
            until_subformulas(a, out);
            until_subformulas(b, out);
        }
        Nnf::R(a, b) => {
            until_subformulas(a, out);
            until_subformulas(b, out);
        }
        Nnf::And(a, b) | Nnf::Or(a, b) => {
            until_subformulas(a, out);
            until_subformulas(b, out);
        }
        Nnf::X(x) => until_subformulas(x, out),
        _ => {}
    }
}

fn label_of(old: &BTreeSet<Nnf>) -> Label {
    let mut pos = 0u64;
    let mut neg = 0u64;
    for f in old {
        if let Nnf::Lit { id, positive } = f {
            assert!(*id < 64, "at most 64 propositions supported");
            if *positive {
                pos |= 1 << id;
            } else {
                neg |= 1 << id;
            }
        }
    }
    Label { pos, neg }
}

impl Buchi {
    /// Translate an NNF propositional LTL formula into a Büchi automaton
    /// accepting exactly the infinite words satisfying it.
    pub fn from_nnf(phi: &Nnf, nprops: usize) -> Buchi {
        let tableau = Tableau::build(phi);
        let n = tableau.nodes.len();

        // acceptance sets: one per U-subformula
        let mut untils = Vec::new();
        until_subformulas(phi, &mut untils);
        let k = untils.len().max(1);
        let in_fset = |state: usize, fi: usize| -> bool {
            if untils.is_empty() {
                return true; // single trivial set containing every state
            }
            let Nnf::U(_, psi) = &untils[fi] else { unreachable!() };
            let old = &tableau.nodes[state].old;
            // `true` is discharged without being recorded in Old, so a
            // satisfied `μ U true` must count as fulfilled here
            matches!(psi.as_ref(), Nnf::True) || old.contains(psi) || !old.contains(&untils[fi])
        };

        // GBA edges: src → dst when src ∈ incoming(dst); guard = label(dst)
        let mut gba_edges: Vec<Vec<(Label, usize)>> = vec![Vec::new(); n];
        for (dst, node) in tableau.nodes.iter().enumerate().skip(1) {
            let lbl = label_of(&node.old);
            for &src in &node.incoming {
                gba_edges[src].push((lbl, dst));
            }
        }

        // degeneralize: states (q, i) — counter i advances when the source
        // state belongs to acceptance set i; accepting = F_0 × {0}
        let id = |q: usize, i: usize| q * k + i;
        let mut trans: Vec<Vec<(Label, usize)>> = vec![Vec::new(); n * k];
        let mut accepting = vec![false; n * k];
        for q in 0..n {
            for i in 0..k {
                // the virtual init node has no incoming edges, so marking it
                // non-accepting never changes the language but lets the
                // bisimulation merge fold it into its successor states
                if i == 0 && q != INIT && in_fset(q, 0) {
                    accepting[id(q, i)] = true;
                }
                let j = if in_fset(q, i) { (i + 1) % k } else { i };
                for &(lbl, dst) in &gba_edges[q] {
                    trans[id(q, i)].push((lbl, id(dst, j)));
                }
            }
        }
        // note on acceptance: state (q, 0) with q ∈ F_0 is accepting; a run
        // hits such states infinitely often iff it cycles through all F_i.
        let mut b = Buchi { nprops, initial: id(INIT, 0), accepting, trans };
        b.simplify();
        b
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Total number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// Successor states of `s` enabled under `assign`.
    pub fn successors<'a>(&'a self, s: usize, assign: u64) -> impl Iterator<Item = usize> + 'a {
        self.trans[s].iter().filter(move |(lbl, _)| lbl.satisfies(assign)).map(|&(_, t)| t)
    }

    /// Simplify: dedup transitions, drop useless states (those that cannot
    /// reach an accepting cycle), merge bisimilar states.
    fn simplify(&mut self) {
        self.dedup_transitions();
        self.prune_useless();
        self.merge_bisimilar();
        self.prune_useless();
    }

    fn dedup_transitions(&mut self) {
        for ts in &mut self.trans {
            ts.sort_unstable();
            ts.dedup();
        }
    }

    /// Keep only states reachable from the initial state that can reach an
    /// accepting cycle (otherwise they can never contribute a run).
    fn prune_useless(&mut self) {
        let n = self.trans.len();
        // forward reachability
        let mut reach = vec![false; n];
        let mut stack = vec![self.initial];
        reach[self.initial] = true;
        while let Some(s) = stack.pop() {
            for &(_, t) in &self.trans[s] {
                if !reach[t] {
                    reach[t] = true;
                    stack.push(t);
                }
            }
        }
        // states on an accepting cycle: accepting s that can reach itself
        let mut on_cycle = vec![false; n];
        for s in 0..n {
            if !reach[s] || !self.accepting[s] {
                continue;
            }
            // DFS from successors of s looking for s
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = self.trans[s].iter().map(|&(_, t)| t).collect();
            let mut found = false;
            while let Some(t) = stack.pop() {
                if t == s {
                    found = true;
                    break;
                }
                if !seen[t] {
                    seen[t] = true;
                    stack.extend(self.trans[t].iter().map(|&(_, u)| u));
                }
            }
            on_cycle[s] = found;
        }
        // backward closure: states that can reach an accepting cycle
        let mut useful = on_cycle.clone();
        loop {
            let mut changed = false;
            for s in 0..n {
                if reach[s] && !useful[s] && self.trans[s].iter().any(|&(_, t)| useful[t]) {
                    useful[s] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // the initial state must survive even if the language is empty
        useful[self.initial] = true;
        let keep: Vec<usize> = (0..n).filter(|&s| reach[s] && useful[s]).collect();
        let mut remap = vec![usize::MAX; n];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let mut trans = Vec::with_capacity(keep.len());
        let mut accepting = Vec::with_capacity(keep.len());
        for &old in &keep {
            let ts: Vec<(Label, usize)> = self.trans[old]
                .iter()
                .filter(|&&(_, t)| remap[t] != usize::MAX)
                .map(|&(l, t)| (l, remap[t]))
                .collect();
            trans.push(ts);
            accepting.push(self.accepting[old]);
        }
        self.initial = remap[self.initial];
        self.trans = trans;
        self.accepting = accepting;
    }

    /// Merge states with identical behaviour (strong bisimulation quotient:
    /// same acceptance flag and same labeled transitions up to classes).
    fn merge_bisimilar(&mut self) {
        let n = self.trans.len();
        let mut class: Vec<usize> = self.accepting.iter().map(|&a| a as usize).collect();
        loop {
            let mut sig_map: HashMap<(usize, Vec<(Label, usize)>), usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for s in 0..n {
                let mut sig: Vec<(Label, usize)> =
                    self.trans[s].iter().map(|&(l, t)| (l, class[t])).collect();
                sig.sort_unstable();
                sig.dedup();
                let key = (class[s], sig);
                let next_id = sig_map.len();
                let c = *sig_map.entry(key).or_insert(next_id);
                next_class[s] = c;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
        if num_classes == n {
            return;
        }
        let mut trans: Vec<Vec<(Label, usize)>> = vec![Vec::new(); num_classes];
        let mut accepting = vec![false; num_classes];
        for s in 0..n {
            let c = class[s];
            accepting[c] = self.accepting[s];
            for &(l, t) in &self.trans[s] {
                trans[c].push((l, class[t]));
            }
        }
        for ts in &mut trans {
            ts.sort_unstable();
            ts.dedup();
        }
        self.initial = class[self.initial];
        self.trans = trans;
        self.accepting = accepting;
    }

    /// Test acceptance of the ultimately periodic word `prefix · cycle^ω`
    /// (each element a proposition assignment). Used as the test oracle
    /// against [`Nnf::eval_lasso`].
    pub fn accepts_lasso(&self, prefix: &[u64], cycle: &[u64]) -> bool {
        assert!(!cycle.is_empty());
        let plen = prefix.len();
        let total = plen + cycle.len();
        let word = |i: usize| if i < plen { prefix[i] } else { cycle[i - plen] };
        let succ_pos = |i: usize| if i + 1 < total { i + 1 } else { plen };
        let nid = |s: usize, i: usize| s * total + i;
        // product reachability from (initial, 0)
        let mut reach = vec![false; self.trans.len() * total];
        let mut stack = vec![(self.initial, 0usize)];
        reach[nid(self.initial, 0)] = true;
        while let Some((s, i)) = stack.pop() {
            for t in self.successors(s, word(i)) {
                let j = succ_pos(i);
                if !reach[nid(t, j)] {
                    reach[nid(t, j)] = true;
                    stack.push((t, j));
                }
            }
        }
        // accepting product node in the cycle region that can reach itself
        for s in 0..self.trans.len() {
            if !self.accepting[s] {
                continue;
            }
            for i in plen..total {
                if !reach[nid(s, i)] {
                    continue;
                }
                let mut seen = vec![false; self.trans.len() * total];
                let mut stack: Vec<(usize, usize)> =
                    self.successors(s, word(i)).map(|t| (t, succ_pos(i))).collect();
                while let Some((t, j)) = stack.pop() {
                    if (t, j) == (s, i) {
                        return true;
                    }
                    if !seen[nid(t, j)] {
                        seen[nid(t, j)] = true;
                        stack.extend(self.successors(t, word(j)).map(|u| (u, succ_pos(j))));
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for Buchi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Buchi automaton: {} states, {} transitions, initial s{}",
            self.num_states(),
            self.num_transitions(),
            self.initial
        )?;
        for (s, ts) in self.trans.iter().enumerate() {
            writeln!(
                f,
                "  s{s}{}{}:",
                if self.accepting[s] { " [accept]" } else { "" },
                if s == self.initial { " [init]" } else { "" },
            )?;
            for (l, t) in ts {
                writeln!(f, "    --[{l}]--> s{t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::{extract, nnf};

    fn automaton(src: &str) -> (Buchi, usize) {
        let prop = crate::parser::parse_property(src).unwrap();
        let e = extract(&prop.body);
        let n = nnf(&e.aux, false);
        let nprops = e.components.len();
        (Buchi::from_nnf(&n, nprops), nprops)
    }

    /// Figure 1 of the paper: the automaton for `P1 U P2` has two states —
    /// a start state looping on P1 with a P2-edge to an accepting state
    /// that loops on true.
    #[test]
    fn fig1_buchi_for_until() {
        let (b, _) = automaton("p1() U p2()");
        assert_eq!(b.num_states(), 2, "\n{b}");
        let acc: Vec<usize> = (0..2).filter(|&s| b.accepting[s]).collect();
        assert_eq!(acc.len(), 1);
        let acc = acc[0];
        let start = b.initial;
        assert_ne!(start, acc);
        // accepting state loops unconditionally
        assert!(b.trans[acc].iter().any(|&(l, t)| t == acc && l == Label::TRUE), "\n{b}");
        // start loops on P1 and advances on P2
        assert!(b.trans[start]
            .iter()
            .any(|&(l, t)| t == start && l.satisfies(0b01) && !l.satisfies(0b00)));
        assert!(b.trans[start].iter().any(|&(l, t)| t == acc && l.satisfies(0b10)));
    }

    #[test]
    fn until_acceptance_on_words() {
        let (b, _) = automaton("p1() U p2()");
        // p1 p1 p2 (then anything) → accepted
        assert!(b.accepts_lasso(&[0b01, 0b01, 0b10], &[0b00]));
        // p1 forever → rejected
        assert!(!b.accepts_lasso(&[], &[0b01]));
        // immediate p2 → accepted
        assert!(b.accepts_lasso(&[], &[0b10]));
        // gap before p2 → rejected
        assert!(!b.accepts_lasso(&[0b00], &[0b10]));
    }

    #[test]
    fn globally_automaton() {
        let (b, _) = automaton("G p()");
        assert!(b.accepts_lasso(&[], &[0b1]));
        assert!(!b.accepts_lasso(&[0b1, 0b1], &[0b0]));
    }

    #[test]
    fn finally_automaton() {
        let (b, _) = automaton("F p()");
        assert!(b.accepts_lasso(&[0b0, 0b0], &[0b1, 0b0]));
        assert!(!b.accepts_lasso(&[], &[0b0]));
    }

    #[test]
    fn response_automaton() {
        let (b, _) = automaton("G (p() -> F q())");
        // every p followed by q
        assert!(b.accepts_lasso(&[], &[0b01, 0b10]));
        // p never answered
        assert!(!b.accepts_lasso(&[0b01], &[0b00]));
        // no p at all
        assert!(b.accepts_lasso(&[], &[0b00]));
    }

    #[test]
    fn next_automaton() {
        let (b, _) = automaton("X p()");
        assert!(b.accepts_lasso(&[0b0], &[0b1]));
        assert!(!b.accepts_lasso(&[0b1], &[0b0]));
    }

    #[test]
    fn before_is_non_strict() {
        let (b, _) = automaton("p() B q()");
        // q never happens
        assert!(b.accepts_lasso(&[], &[0b00]));
        // p strictly before q
        assert!(b.accepts_lasso(&[0b01, 0b10], &[0b00]));
        // q first
        assert!(!b.accepts_lasso(&[0b10], &[0b00]));
        // simultaneous first occurrence counts (the paper's P5 relies on it)
        assert!(b.accepts_lasso(&[0b11], &[0b00]));
    }

    #[test]
    fn empty_language_formula() {
        // `false` has an empty language; the initial state must survive
        // simplification so the verifier can still start a (failing) search
        let (b, _) = automaton("false");
        assert!(b.initial < b.num_states());
        assert!(!b.accepts_lasso(&[], &[0b0]));
        assert!(!b.accepts_lasso(&[], &[0b1]));
    }

    /// Cross-validate the automaton against direct lasso semantics on an
    /// exhaustive set of small words, for a battery of formulas covering
    /// all operators and the paper's property shapes T1–T10.
    #[test]
    fn automata_match_semantics_exhaustively() {
        let formulas = [
            "p() U q()",
            "p() R q()",
            "p() B q()",
            "G p()",
            "F p()",
            "X p()",
            "G (p() -> F q())", // response
            "F p() -> F q()",   // correlation
            "G p() -> G q()",   // session
            "G (F p())",        // recurrence
            "F (G p())",        // strong non-progress
            "G (p() -> X p())", // weak non-progress
            "G p() | F q()",    // reachability-ish
            "!(p() U q())",
            "(p() U q()) U p()",
            "X X p()",
            "G (p() & q()) | F (p() & !q())",
        ];
        for src in formulas {
            let prop = crate::parser::parse_property(src).unwrap();
            let e = extract(&prop.body);
            let f = nnf(&e.aux, false);
            let b = Buchi::from_nnf(&f, e.components.len());
            // all lasso words with prefix ≤ 2 and cycle ≤ 2 over 2 props
            for plen in 0..=2usize {
                for clen in 1..=2usize {
                    let mut shape = vec![0u64; plen + clen];
                    exhaustive(&mut shape, 0, &mut |word: &[u64]| {
                        let (pre, cyc) = word.split_at(plen);
                        let expect = f.eval_lasso(pre, cyc);
                        let got = b.accepts_lasso(pre, cyc);
                        assert_eq!(expect, got, "formula {src}, word {pre:?} ({cyc:?})^ω\n{b}");
                    });
                }
            }
        }
        fn exhaustive(word: &mut Vec<u64>, i: usize, check: &mut impl FnMut(&[u64])) {
            if i == word.len() {
                check(word);
                return;
            }
            for v in 0..4u64 {
                word[i] = v;
                exhaustive(word, i + 1, check);
            }
        }
    }
}

impl Buchi {
    /// Graphviz DOT rendering of the automaton (for papers, debugging, and
    /// the `wave automaton` CLI).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph buchi {\n  rankdir=LR;\n");
        let _ = writeln!(out, "  init [shape=point];");
        for s in 0..self.num_states() {
            let shape = if self.accepting[s] { "doublecircle" } else { "circle" };
            let _ = writeln!(out, "  s{s} [shape={shape}];");
        }
        let _ = writeln!(out, "  init -> s{};", self.initial);
        for (s, ts) in self.trans.iter().enumerate() {
            for (l, t) in ts {
                let _ = writeln!(out, "  s{s} -> s{t} [label=\"{l}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::props::{extract, nnf};

    #[test]
    fn dot_export_is_well_formed() {
        let prop = crate::parser::parse_property("p() U q()").unwrap();
        let e = extract(&prop.body);
        let b = Buchi::from_nnf(&nnf(&e.aux, false), e.components.len());
        let dot = b.to_dot();
        assert!(dot.starts_with("digraph buchi {"), "{dot}");
        assert!(dot.contains("doublecircle"), "accepting state styled: {dot}");
        assert!(dot.contains("init -> s"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }
}
