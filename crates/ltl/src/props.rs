//! FO-component extraction and propositional normal forms.
//!
//! Step 1 of the paper's verification roadmap: replace each maximal FO
//! component of the (negated) property with a fresh propositional symbol,
//! obtaining the plain LTL formula `φ_aux` that the Büchi construction
//! consumes. At search time the verifier evaluates the FO components on the
//! current pseudoconfiguration to obtain a truth assignment for these
//! propositions.

use crate::ast::Ltl;
use std::fmt;
use wave_fol::Formula;

/// A propositional LTL formula (general form, before NNF).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropLtl {
    True,
    False,
    Prop(usize),
    Not(Box<PropLtl>),
    And(Box<PropLtl>, Box<PropLtl>),
    Or(Box<PropLtl>, Box<PropLtl>),
    X(Box<PropLtl>),
    U(Box<PropLtl>, Box<PropLtl>),
    R(Box<PropLtl>, Box<PropLtl>),
}

impl fmt::Display for PropLtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropLtl::True => write!(f, "true"),
            PropLtl::False => write!(f, "false"),
            PropLtl::Prop(id) => write!(f, "P{id}"),
            PropLtl::Not(x) => write!(f, "!({x})"),
            PropLtl::And(a, b) => write!(f, "({a} & {b})"),
            PropLtl::Or(a, b) => write!(f, "({a} | {b})"),
            PropLtl::X(x) => write!(f, "X({x})"),
            PropLtl::U(a, b) => write!(f, "({a} U {b})"),
            PropLtl::R(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

/// Extraction result: `φ_aux` plus the table mapping each proposition id to
/// its FO component.
#[derive(Clone, Debug)]
pub struct Extraction {
    pub aux: PropLtl,
    pub components: Vec<Formula>,
}

/// Replace the FO leaves of a grouped LTL body with propositions.
/// Syntactically identical components share a proposition.
pub fn extract(body: &Ltl) -> Extraction {
    let mut components: Vec<Formula> = Vec::new();
    let aux = go(body, &mut components);
    Extraction { aux, components }
}

fn go(l: &Ltl, components: &mut Vec<Formula>) -> PropLtl {
    match l {
        Ltl::Fo(Formula::True) => PropLtl::True,
        Ltl::Fo(Formula::False) => PropLtl::False,
        Ltl::Fo(f) => {
            let id = components.iter().position(|g| g == f).unwrap_or_else(|| {
                components.push(f.clone());
                components.len() - 1
            });
            PropLtl::Prop(id)
        }
        Ltl::Not(x) => PropLtl::Not(Box::new(go(x, components))),
        Ltl::And(a, b) => PropLtl::And(Box::new(go(a, components)), Box::new(go(b, components))),
        Ltl::Or(a, b) => PropLtl::Or(Box::new(go(a, components)), Box::new(go(b, components))),
        Ltl::Implies(a, b) => PropLtl::Or(
            Box::new(PropLtl::Not(Box::new(go(a, components)))),
            Box::new(go(b, components)),
        ),
        Ltl::X(x) => PropLtl::X(Box::new(go(x, components))),
        // F p ≡ true U p; G p ≡ false R p
        Ltl::F(x) => PropLtl::U(Box::new(PropLtl::True), Box::new(go(x, components))),
        Ltl::G(x) => PropLtl::R(Box::new(PropLtl::False), Box::new(go(x, components))),
        Ltl::U(a, b) => PropLtl::U(Box::new(go(a, components)), Box::new(go(b, components))),
        Ltl::R(a, b) => PropLtl::R(Box::new(go(a, components)), Box::new(go(b, components))),
        // p B q ≡ ¬(¬p U (q ∧ ¬p)) ≡ p R (¬q ∨ p): q may not become true
        // before p has held, but the first occurrences may coincide
        Ltl::B(a, b) => {
            let pa = go(a, components);
            let pb = go(b, components);
            PropLtl::R(
                Box::new(pa.clone()),
                Box::new(PropLtl::Or(Box::new(PropLtl::Not(Box::new(pb))), Box::new(pa))),
            )
        }
    }
}

/// Negation-normal-form propositional LTL: negation only on propositions.
/// This is the input language of the GPVW tableau construction.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Nnf {
    True,
    False,
    /// Literal: proposition `id`, positive when `positive`.
    Lit {
        id: usize,
        positive: bool,
    },
    And(Box<Nnf>, Box<Nnf>),
    Or(Box<Nnf>, Box<Nnf>),
    X(Box<Nnf>),
    U(Box<Nnf>, Box<Nnf>),
    R(Box<Nnf>, Box<Nnf>),
}

/// Convert to NNF, optionally negating (`neg = true` computes `¬φ` in NNF).
pub fn nnf(f: &PropLtl, neg: bool) -> Nnf {
    match f {
        PropLtl::True => {
            if neg {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        PropLtl::False => {
            if neg {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        PropLtl::Prop(id) => Nnf::Lit { id: *id, positive: !neg },
        PropLtl::Not(x) => nnf(x, !neg),
        PropLtl::And(a, b) => {
            if neg {
                Nnf::Or(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Nnf::And(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
        PropLtl::Or(a, b) => {
            if neg {
                Nnf::And(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Nnf::Or(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
        PropLtl::X(x) => Nnf::X(Box::new(nnf(x, neg))),
        PropLtl::U(a, b) => {
            if neg {
                Nnf::R(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Nnf::U(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
        PropLtl::R(a, b) => {
            if neg {
                Nnf::U(Box::new(nnf(a, true)), Box::new(nnf(b, true)))
            } else {
                Nnf::R(Box::new(nnf(a, false)), Box::new(nnf(b, false)))
            }
        }
    }
}

impl Nnf {
    /// Evaluate on an ultimately periodic word `prefix · cycle^ω`, where
    /// each position is a truth assignment bitmask (bit `i` = proposition
    /// `i`). Used as the reference semantics in tests: the Büchi automaton
    /// must accept exactly the lasso words satisfying the formula.
    pub fn eval_lasso(&self, prefix: &[u64], cycle: &[u64]) -> bool {
        assert!(!cycle.is_empty(), "cycle must be nonempty");
        let n = prefix.len() + cycle.len();
        let succ = |i: usize| if i + 1 < n { i + 1 } else { prefix.len() };
        // iterate to fixpoint: least for U, greatest for R — 2n rounds of
        // backward evaluation over the lasso positions suffice
        fn value(
            f: &Nnf,
            i: usize,
            word: &dyn Fn(usize) -> u64,
            succ: &dyn Fn(usize) -> usize,
            fuel: usize,
        ) -> bool {
            match f {
                Nnf::True => true,
                Nnf::False => false,
                Nnf::Lit { id, positive } => {
                    let bit = (word(i) >> id) & 1 == 1;
                    bit == *positive
                }
                Nnf::And(a, b) => value(a, i, word, succ, fuel) && value(b, i, word, succ, fuel),
                Nnf::Or(a, b) => value(a, i, word, succ, fuel) || value(b, i, word, succ, fuel),
                Nnf::X(x) => value(x, succ(i), word, succ, fuel),
                Nnf::U(a, b) => {
                    // unfold at most `fuel` steps; on a lasso of n positions,
                    // fuel = 2n covers every reachable position twice
                    let mut j = i;
                    for _ in 0..fuel {
                        if value(b, j, word, succ, fuel) {
                            return true;
                        }
                        if !value(a, j, word, succ, fuel) {
                            return false;
                        }
                        j = succ(j);
                    }
                    false
                }
                Nnf::R(a, b) => {
                    // a R b ≡ ¬(¬a U ¬b): b holds until (and including) a
                    let mut j = i;
                    for _ in 0..fuel {
                        if !value(b, j, word, succ, fuel) {
                            return false;
                        }
                        if value(a, j, word, succ, fuel) {
                            return true;
                        }
                        j = succ(j);
                    }
                    true
                }
            }
        }
        let word = |i: usize| {
            if i < prefix.len() {
                prefix[i]
            } else {
                cycle[i - prefix.len()]
            }
        };
        value(self, 0, &word, &succ, 2 * n + 2)
    }

    /// All proposition ids mentioned.
    pub fn props(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(f: &Nnf, out: &mut Vec<usize>) {
            match f {
                Nnf::Lit { id, .. } if !out.contains(id) => {
                    out.push(*id);
                }
                Nnf::And(a, b) | Nnf::Or(a, b) | Nnf::U(a, b) | Nnf::R(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                Nnf::X(x) => walk(x, out),
                _ => {}
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Nnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nnf::True => write!(f, "true"),
            Nnf::False => write!(f, "false"),
            Nnf::Lit { id, positive } => {
                write!(f, "{}P{id}", if *positive { "" } else { "!" })
            }
            Nnf::And(a, b) => write!(f, "({a} & {b})"),
            Nnf::Or(a, b) => write!(f, "({a} | {b})"),
            Nnf::X(x) => write!(f, "X({x})"),
            Nnf::U(a, b) => write!(f, "({a} U {b})"),
            Nnf::R(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_property;

    fn extract_src(src: &str) -> Extraction {
        extract(&parse_property(src).unwrap().body)
    }

    #[test]
    fn shared_components_get_one_proposition() {
        let e = extract_src("a() U (a() & b())");
        // components: a(), a() & b() — grouped maximally, so LHS a() is one
        // component and (a() & b()) is another (both temporal-free leaves)
        assert_eq!(e.components.len(), 2);
    }

    #[test]
    fn identical_leaves_dedup() {
        let e = extract_src("F a() & G a()");
        assert_eq!(e.components.len(), 1);
    }

    #[test]
    fn before_desugars_to_release() {
        let e = extract_src("p() B q()");
        match e.aux {
            PropLtl::R(lhs, rhs) => {
                assert_eq!(*lhs, PropLtl::Prop(0));
                // ¬q ∨ p
                assert_eq!(
                    *rhs,
                    PropLtl::Or(
                        Box::new(PropLtl::Not(Box::new(PropLtl::Prop(1)))),
                        Box::new(PropLtl::Prop(0))
                    )
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nnf_pushes_negations_to_literals() {
        let e = extract_src("!(p() U q())");
        let n = nnf(&e.aux, false);
        assert_eq!(
            n,
            Nnf::R(
                Box::new(Nnf::Lit { id: 0, positive: false }),
                Box::new(Nnf::Lit { id: 1, positive: false })
            )
        );
    }

    #[test]
    fn nnf_negation_of_formula() {
        let e = extract_src("p() U q()");
        let n = nnf(&e.aux, true);
        assert!(matches!(n, Nnf::R(_, _)));
    }

    #[test]
    fn lasso_semantics_until() {
        // p U q with p={bit0}, q={bit1}
        let f = Nnf::U(
            Box::new(Nnf::Lit { id: 0, positive: true }),
            Box::new(Nnf::Lit { id: 1, positive: true }),
        );
        // word: p p q ...(q forever) → holds
        assert!(f.eval_lasso(&[0b01, 0b01], &[0b10]));
        // word: p forever, no q → fails
        assert!(!f.eval_lasso(&[], &[0b01]));
        // word: ¬p then q → fails at step 0? no: q at position 1, p at 0 → need p until q
        assert!(f.eval_lasso(&[0b01], &[0b10]));
        assert!(!f.eval_lasso(&[0b00, 0b10], &[0b00]), "p fails before q");
    }

    #[test]
    fn lasso_semantics_release_and_globally() {
        // G p ≡ false R p
        let g = Nnf::R(Box::new(Nnf::False), Box::new(Nnf::Lit { id: 0, positive: true }));
        assert!(g.eval_lasso(&[0b1], &[0b1]));
        assert!(!g.eval_lasso(&[0b1], &[0b1, 0b0]));
    }

    #[test]
    fn lasso_semantics_before() {
        // p B q ≡ p R (¬q ∨ p): q may not precede p, coincidence allowed
        let p = || Box::new(Nnf::Lit { id: 0, positive: true });
        let b = Nnf::R(p(), Box::new(Nnf::Or(Box::new(Nnf::Lit { id: 1, positive: false }), p())));
        // q never → true
        assert!(b.eval_lasso(&[], &[0b00]));
        // p at 0, q at 1 → true
        assert!(b.eval_lasso(&[0b01, 0b10], &[0b00]));
        // q at 0 before any p → false
        assert!(!b.eval_lasso(&[0b10], &[0b00]));
        // p and q simultaneously at their first occurrence → true
        assert!(b.eval_lasso(&[0b11], &[0b00]));
    }

    #[test]
    fn x_semantics_on_lasso() {
        let f = Nnf::X(Box::new(Nnf::Lit { id: 0, positive: true }));
        assert!(f.eval_lasso(&[0b0], &[0b1]));
        assert!(!f.eval_lasso(&[0b1], &[0b0]));
        // wrap-around: single-state cycle is its own successor
        assert!(f.eval_lasso(&[], &[0b1]));
    }
}
