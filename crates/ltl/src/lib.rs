//! `wave-ltl`: LTL-FO properties and the LTL→Büchi translation.
//!
//! Implements steps 1 and 2 of the paper's verification roadmap:
//! the property [`ast`] and [`parser`], the extraction of maximal FO
//! components into propositional symbols ([`props`], producing `φ_aux`),
//! and the from-scratch GPVW tableau construction of Büchi automata
//! ([`buchi`]) that replaces the external `ltl2ba` tool the paper used.

pub mod ast;
pub mod buchi;
pub mod parser;
pub mod props;

pub use ast::{Ltl, Property};
pub use buchi::{Buchi, Label};
pub use parser::{parse_ltl, parse_property};
pub use props::{extract, nnf, Extraction, Nnf, PropLtl};
