//! LTL-FO abstract syntax.
//!
//! An LTL-FO property combines FO formulas (its *FO components*) with
//! temporal operators — `X` (next), `F` (finally), `G` (globally),
//! `U` (until), `R` (release), `B` (before) — and boolean connectives, with
//! any remaining free variables universally quantified outermost
//! (Section 2.1 of the paper).
//!
//! `B` follows the paper's definition (its footnote notes it differs
//! slightly from the earlier theory papers): `p B q` holds when either `q`
//! never holds, or `p` holds at or before the first time `q` holds — the
//! *non-strict* reading, which the paper's Example 3.1 relies on (payment
//! and confirmation co-occur at the submit step, and P5 is reported true).
//! It is definable as `¬(¬p U (q ∧ ¬p))`, equivalently `p R (¬q ∨ p)`.

use std::fmt;
use wave_fol::Formula;

/// A (possibly temporal) LTL-FO formula body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ltl {
    /// A first-order leaf (after grouping: a maximal FO component).
    Fo(Formula),
    Not(Box<Ltl>),
    And(Box<Ltl>, Box<Ltl>),
    Or(Box<Ltl>, Box<Ltl>),
    Implies(Box<Ltl>, Box<Ltl>),
    /// Next.
    X(Box<Ltl>),
    /// Finally (eventually).
    F(Box<Ltl>),
    /// Globally (always).
    G(Box<Ltl>),
    /// Until.
    U(Box<Ltl>, Box<Ltl>),
    /// Release (dual of until).
    R(Box<Ltl>, Box<Ltl>),
    /// Before: `p B q` — if `q` ever holds, `p` held at or before the
    /// first occurrence of `q` (non-strict; see the module docs).
    B(Box<Ltl>, Box<Ltl>),
}

impl Ltl {
    /// True iff the subtree contains no temporal operator.
    pub fn is_temporal_free(&self) -> bool {
        match self {
            Ltl::Fo(_) => true,
            Ltl::Not(x) => x.is_temporal_free(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Implies(a, b) => {
                a.is_temporal_free() && b.is_temporal_free()
            }
            Ltl::X(_) | Ltl::F(_) | Ltl::G(_) => false,
            Ltl::U(_, _) | Ltl::R(_, _) | Ltl::B(_, _) => false,
        }
    }

    /// Convert a temporal-free subtree into a plain FO formula.
    /// Panics if a temporal operator is present (check first).
    pub fn to_formula(&self) -> Formula {
        match self {
            Ltl::Fo(f) => f.clone(),
            Ltl::Not(x) => Formula::not(x.to_formula()),
            Ltl::And(a, b) => Formula::and([a.to_formula(), b.to_formula()]),
            Ltl::Or(a, b) => Formula::or([a.to_formula(), b.to_formula()]),
            Ltl::Implies(a, b) => {
                Formula::Implies(Box::new(a.to_formula()), Box::new(b.to_formula()))
            }
            _ => panic!("to_formula on temporal subtree"),
        }
    }

    /// Collapse every maximal temporal-free subtree into a single
    /// [`Ltl::Fo`] leaf. The resulting leaves are exactly the paper's
    /// `frFO(φ)` — the maximal FO components.
    pub fn group_fo(&self) -> Ltl {
        if self.is_temporal_free() {
            return Ltl::Fo(self.to_formula());
        }
        match self {
            Ltl::Fo(f) => Ltl::Fo(f.clone()),
            Ltl::Not(x) => Ltl::Not(Box::new(x.group_fo())),
            Ltl::And(a, b) => Ltl::And(Box::new(a.group_fo()), Box::new(b.group_fo())),
            Ltl::Or(a, b) => Ltl::Or(Box::new(a.group_fo()), Box::new(b.group_fo())),
            Ltl::Implies(a, b) => Ltl::Implies(Box::new(a.group_fo()), Box::new(b.group_fo())),
            Ltl::X(x) => Ltl::X(Box::new(x.group_fo())),
            Ltl::F(x) => Ltl::F(Box::new(x.group_fo())),
            Ltl::G(x) => Ltl::G(Box::new(x.group_fo())),
            Ltl::U(a, b) => Ltl::U(Box::new(a.group_fo()), Box::new(b.group_fo())),
            Ltl::R(a, b) => Ltl::R(Box::new(a.group_fo()), Box::new(b.group_fo())),
            Ltl::B(a, b) => Ltl::B(Box::new(a.group_fo()), Box::new(b.group_fo())),
        }
    }
}

impl fmt::Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::Fo(x) => write!(f, "{x}"),
            Ltl::Not(x) => write!(f, "!({x})"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::Implies(a, b) => write!(f, "({a} -> {b})"),
            Ltl::X(x) => write!(f, "X ({x})"),
            Ltl::F(x) => write!(f, "F ({x})"),
            Ltl::G(x) => write!(f, "G ({x})"),
            Ltl::U(a, b) => write!(f, "(({a}) U ({b}))"),
            Ltl::R(a, b) => write!(f, "(({a}) R ({b}))"),
            Ltl::B(a, b) => write!(f, "(({a}) B ({b}))"),
        }
    }
}

/// A full LTL-FO property: outermost universally quantified variables plus
/// the temporal body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Property {
    /// The paper's `∀x̄` prefix; empty when the body is closed.
    pub univ_vars: Vec<String>,
    pub body: Ltl,
}

impl Property {
    /// Closed property (no outer quantifier).
    pub fn closed(body: Ltl) -> Self {
        Property { univ_vars: vec![], body }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.univ_vars.is_empty() {
            write!(f, "forall {}: ", self.univ_vars.join(", "))?;
        }
        write!(f, "{}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wave_fol::parse_formula;

    fn fo(src: &str) -> Ltl {
        Ltl::Fo(parse_formula(src).unwrap())
    }

    #[test]
    fn temporal_freeness() {
        let pure = Ltl::And(Box::new(fo("a()")), Box::new(fo("b()")));
        assert!(pure.is_temporal_free());
        let temporal = Ltl::U(Box::new(fo("a()")), Box::new(fo("b()")));
        assert!(!temporal.is_temporal_free());
    }

    #[test]
    fn group_fo_collapses_maximal_subtrees() {
        // (a & b) U (c | !d) → two FO leaves
        let l = Ltl::U(
            Box::new(Ltl::And(Box::new(fo("a()")), Box::new(fo("b()")))),
            Box::new(Ltl::Or(Box::new(fo("c()")), Box::new(Ltl::Not(Box::new(fo("d()")))))),
        );
        let g = l.group_fo();
        match g {
            Ltl::U(a, b) => {
                assert!(matches!(*a, Ltl::Fo(_)));
                assert!(matches!(*b, Ltl::Fo(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_fo_keeps_temporal_structure() {
        // G(a -> F b): implication must NOT collapse since F b is temporal
        let l = Ltl::G(Box::new(Ltl::Implies(
            Box::new(fo("a()")),
            Box::new(Ltl::F(Box::new(fo("b()")))),
        )));
        match l.group_fo() {
            Ltl::G(inner) => match *inner {
                Ltl::Implies(lhs, rhs) => {
                    assert!(matches!(*lhs, Ltl::Fo(_)));
                    assert!(matches!(*rhs, Ltl::F(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
