//! Parser for LTL-FO properties.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! property   := ('forall' vars ':')? ltl
//! ltl        := ltl_or ('->' ltl)?
//! ltl_or     := ltl_and ('|' ltl_and)*
//! ltl_and    := ltl_until ('&' ltl_until)*
//! ltl_until  := ltl_unary (('U'|'R'|'B') ltl_until)?      (right assoc)
//! ltl_unary  := ('X'|'F'|'G'|'[]'|'<>'|'!') ltl_unary | ltl_prim
//! ltl_prim   := '(' ltl ')' | 'true' | 'false' | '@' IDENT
//!             | ('exists'|'forall') vars ':' FO-formula   (pure FO body)
//!             | 'prev'? IDENT '(' terms ')' | term ('='|'!=') term
//! ```
//!
//! The single-letter identifiers `X F G U R B` are reserved temporal
//! operators inside properties; relations used in properties must avoid
//! those names. Quantifier bodies are pure FO (temporal operators may not
//! occur under a quantifier — that is exactly the LTL-FO restriction).

use crate::ast::{Ltl, Property};
use wave_fol::ast::{Atom, Formula};
use wave_fol::lexer::TokenKind;
use wave_fol::parser::{ParseError, Parser};

/// Parse a property from text. The outer `forall` (if any) becomes the
/// property's universal prefix; FO components are grouped maximally.
pub fn parse_property(src: &str) -> Result<Property, ParseError> {
    let mut p = Parser::from_source(src)?;
    // An initial `forall` is the property-level quantifier prefix…
    // unless it is immediately re-used as an FO quantifier, which we cannot
    // distinguish; the paper's convention is that the outermost universal
    // quantification belongs to the property, so we adopt it.
    let univ_vars = if p.at_keyword("forall") {
        p.bump();
        let vars = p.var_list()?;
        p.expect(&TokenKind::Colon)?;
        vars
    } else {
        Vec::new()
    };
    let body = parse_ltl(&mut p)?;
    if !p.at_eof() {
        return Err(p.error(format!("trailing input: {}", p.peek_kind())));
    }
    let body = body.group_fo();
    // "The remaining free variables in the resulting formula are
    // universally quantified at the very end" (Section 2.1): close over
    // any component free variable the prefix did not list.
    let mut univ_vars = univ_vars;
    collect_component_free_vars(&body, &mut univ_vars);
    Ok(Property { univ_vars, body })
}

fn collect_component_free_vars(l: &Ltl, vars: &mut Vec<String>) {
    match l {
        Ltl::Fo(f) => {
            for v in wave_fol::free_vars(f) {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        Ltl::Not(x) | Ltl::X(x) | Ltl::F(x) | Ltl::G(x) => collect_component_free_vars(x, vars),
        Ltl::And(a, b)
        | Ltl::Or(a, b)
        | Ltl::Implies(a, b)
        | Ltl::U(a, b)
        | Ltl::R(a, b)
        | Ltl::B(a, b) => {
            collect_component_free_vars(a, vars);
            collect_component_free_vars(b, vars);
        }
    }
}

/// Parse an LTL body (no property prefix) from the parser's position.
pub fn parse_ltl(p: &mut Parser) -> Result<Ltl, ParseError> {
    implication(p)
}

fn implication(p: &mut Parser) -> Result<Ltl, ParseError> {
    let lhs = disjunction(p)?;
    if p.peek_kind() == &TokenKind::Arrow {
        p.bump();
        let rhs = implication(p)?;
        Ok(Ltl::Implies(Box::new(lhs), Box::new(rhs)))
    } else {
        Ok(lhs)
    }
}

fn disjunction(p: &mut Parser) -> Result<Ltl, ParseError> {
    let mut acc = conjunction(p)?;
    while p.peek_kind() == &TokenKind::Pipe {
        p.bump();
        let rhs = conjunction(p)?;
        acc = Ltl::Or(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn conjunction(p: &mut Parser) -> Result<Ltl, ParseError> {
    let mut acc = until(p)?;
    while p.peek_kind() == &TokenKind::Amp {
        p.bump();
        let rhs = until(p)?;
        acc = Ltl::And(Box::new(acc), Box::new(rhs));
    }
    Ok(acc)
}

fn until(p: &mut Parser) -> Result<Ltl, ParseError> {
    let lhs = unary(p)?;
    for (kw, ctor) in [
        ("U", Ltl::U as fn(Box<Ltl>, Box<Ltl>) -> Ltl),
        ("R", Ltl::R as fn(Box<Ltl>, Box<Ltl>) -> Ltl),
        ("B", Ltl::B as fn(Box<Ltl>, Box<Ltl>) -> Ltl),
    ] {
        if p.at_keyword(kw) {
            p.bump();
            let rhs = until(p)?;
            return Ok(ctor(Box::new(lhs), Box::new(rhs)));
        }
    }
    Ok(lhs)
}

fn unary(p: &mut Parser) -> Result<Ltl, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::Bang => {
            p.bump();
            Ok(Ltl::Not(Box::new(unary(p)?)))
        }
        TokenKind::Box_ => {
            p.bump();
            Ok(Ltl::G(Box::new(unary(p)?)))
        }
        TokenKind::Diamond => {
            p.bump();
            Ok(Ltl::F(Box::new(unary(p)?)))
        }
        TokenKind::Ident(w) if w == "X" => {
            p.bump();
            Ok(Ltl::X(Box::new(unary(p)?)))
        }
        TokenKind::Ident(w) if w == "F" => {
            p.bump();
            Ok(Ltl::F(Box::new(unary(p)?)))
        }
        TokenKind::Ident(w) if w == "G" => {
            p.bump();
            Ok(Ltl::G(Box::new(unary(p)?)))
        }
        _ => primary(p),
    }
}

fn primary(p: &mut Parser) -> Result<Ltl, ParseError> {
    match p.peek_kind().clone() {
        TokenKind::LParen => {
            p.bump();
            let inner = parse_ltl(p)?;
            p.expect(&TokenKind::RParen)?;
            Ok(inner)
        }
        TokenKind::At => {
            p.bump();
            let page = p.expect_ident()?;
            Ok(Ltl::Fo(Formula::Page(page)))
        }
        TokenKind::Ident(w) if w == "true" => {
            p.bump();
            Ok(Ltl::Fo(Formula::True))
        }
        TokenKind::Ident(w) if w == "false" => {
            p.bump();
            Ok(Ltl::Fo(Formula::False))
        }
        TokenKind::Ident(w) if w == "exists" || w == "forall" => {
            // quantified FO component: the body is pure FO
            Ok(Ltl::Fo(p.parse_formula()?))
        }
        TokenKind::Ident(w) if w == "prev" => {
            p.bump();
            let rel = p.expect_ident()?;
            let terms = p.term_tuple()?;
            Ok(Ltl::Fo(Formula::Atom(Atom { rel, prev: true, terms })))
        }
        TokenKind::Ident(name) => {
            if p.peek_ahead(1) == &TokenKind::LParen {
                p.bump();
                let terms = p.term_tuple()?;
                Ok(Ltl::Fo(Formula::Atom(Atom { rel: name, prev: false, terms })))
            } else {
                let lhs = p.term()?;
                comparison(p, lhs)
            }
        }
        TokenKind::Str(_) => {
            let lhs = p.term()?;
            comparison(p, lhs)
        }
        other => Err(p.error(format!("expected LTL formula, found {other}"))),
    }
}

fn comparison(p: &mut Parser, lhs: wave_fol::Term) -> Result<Ltl, ParseError> {
    match p.peek_kind() {
        TokenKind::Eq => {
            p.bump();
            let rhs = p.term()?;
            Ok(Ltl::Fo(Formula::Eq(lhs, rhs)))
        }
        TokenKind::Ne => {
            p.bump();
            let rhs = p.term()?;
            Ok(Ltl::Fo(Formula::Ne(lhs, rhs)))
        }
        other => Err(p.error(format!("expected '=' or '!=', found {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_shipment_property() {
        // (†) ∀x∀y∀id [(pay(id,x,y) ∧ price(x,y)) B ship(id,x)]
        let prop =
            parse_property("forall x, y, id: (pay(id, x, y) & price(x, y)) B ship(id, x)").unwrap();
        assert_eq!(prop.univ_vars, vec!["x", "y", "id"]);
        match prop.body {
            Ltl::B(lhs, rhs) => {
                assert!(matches!(*lhs, Ltl::Fo(Formula::And(_))));
                assert!(matches!(*rhs, Ltl::Fo(Formula::Atom(_))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn until_is_right_associative() {
        let prop = parse_property("a() U b() U c()").unwrap();
        match prop.body {
            Ltl::U(_, rhs) => assert!(matches!(*rhs, Ltl::U(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sugar_box_and_diamond() {
        let prop = parse_property("[] <> @HP").unwrap();
        match prop.body {
            Ltl::G(inner) => assert!(matches!(*inner, Ltl::F(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn temporal_ops_by_letter() {
        let prop = parse_property("G (a() -> X b())").unwrap();
        match prop.body {
            Ltl::G(inner) => match *inner {
                Ltl::Implies(_, rhs) => assert!(matches!(*rhs, Ltl::X(_))),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantified_fo_component_stays_fo() {
        // P9-style: G(@EP -> ∃x clicklink(x)) → …
        let prop = parse_property("G (@EP -> (exists x: clicklink(x))) -> G F @HP").unwrap();
        match prop.body {
            Ltl::Implies(lhs, _) => match *lhs {
                Ltl::G(inner) => {
                    // @EP -> exists… is temporal-free → collapsed to one FO leaf
                    assert!(matches!(*inner, Ltl::Fo(Formula::Implies(_, _))));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fo_grouping_is_maximal() {
        let prop = parse_property("(a() & b()) U c()").unwrap();
        match prop.body {
            Ltl::U(lhs, _) => assert!(matches!(*lhs, Ltl::Fo(Formula::And(_)))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn property_equality_example_three_one() {
        // Property (1) of the paper, transliterated into our syntax.
        let src = r#"forall pid, category, name, ram, hdd, display, price:
            (@UPP & button("submit") & cart(pid, price)
             & products(pid, category, name, ram, hdd, display, price))
            B conf(pid, category, name, ram, hdd, display, price)"#;
        let prop = parse_property(src).unwrap();
        assert_eq!(prop.univ_vars.len(), 7);
        assert!(matches!(prop.body, Ltl::B(_, _)));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_property("a() b()").is_err());
    }
}
