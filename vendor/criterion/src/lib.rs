//! A minimal stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `criterion` to this implementation. It supports the subset of
//! the criterion 0.5 API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `measurement_time`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — and reports a simple
//! mean wall-clock time per benchmark on stdout.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(5) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("benchmark group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing sampling parameters.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        let (mean, n) = b.summary();
        println!("  {}/{id}: mean {mean:?} over {n} samples", self.name);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // one untimed warmup, then up to `sample_size` timed samples,
        // stopping early once the measurement budget is spent
        black_box(payload());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(payload());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn summary(&self) -> (Duration, usize) {
        if self.samples.is_empty() {
            return (Duration::ZERO, 0);
        }
        let total: Duration = self.samples.iter().sum();
        (total / self.samples.len() as u32, self.samples.len())
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. `--bench`); the
            // stub has no filtering, so arguments are ignored
            $($group();)+
        }
    };
}
