//! A minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `proptest` to this implementation. It covers exactly the API
//! surface the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! * strategies for integer ranges, tuples, [`Just`], [`any`],
//!   `prop::collection::vec`, and `prop::option::of`,
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros,
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: cases are generated from a fixed per-test seed (derived from
//! the test name) so every run explores the same inputs — failures are
//! reproducible by rerunning the test.

use std::rc::Rc;

/// Deterministic splitmix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

pub mod test_runner {
    use super::TestRng;

    /// Per-test RNG: the seed is a hash of the test name, so each test
    /// sees a stable but distinct input stream.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng::seeded(h)
    }

    /// Harness configuration (`cases` is the only knob the stub honors).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Depth-bounded recursive strategies: the stub expands the recursion
    /// `depth` times, so generated trees are at most `depth` levels deep.
    /// (`desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `any::<T>()` support.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
#[derive(Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*`.
pub mod strategies {
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Half-open length range, mirroring proptest's `SizeRange`
        /// conversions (`usize` means "exactly that many").
        #[derive(Clone)]
        pub struct SizeRange {
            start: usize,
            end: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { start: n, end: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty length range");
                SizeRange { start: r.start, end: r.end }
            }
        }

        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// Vectors whose length is drawn from `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, len: len.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        #[derive(Clone)]
        pub struct OptionStrategy<S>(S);

        /// `None` a quarter of the time, `Some` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} — {}",
                ::core::stringify!($cond), ::std::format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left), ::core::stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n {}",
                ::core::stringify!($left), ::core::stringify!($right), l, r,
                ::std::format!($($fmt)+)));
        }
    }};
}

/// The test-definition macro. Each contained `fn name(pat in strategy, …)
/// { body }` becomes a `#[test]` that runs the body over `config.cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)* ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(::core::stringify!($name));
            for case in 0..config.cases {
                let outcome: ::core::result::Result<(), ::std::string::String> = {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let mut case_fn = || { $body ::core::result::Result::Ok(()) };
                    case_fn()
                };
                if let ::core::result::Result::Err(msg) = outcome {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}:\n{}",
                        ::core::stringify!($name), case, config.cases, msg);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( ($cfg:expr) ) => {};
}

pub mod prelude {
    pub use super::strategies as prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}
