//! Golden-file pin of the JSONL trace schema (version 1).
//!
//! DESIGN.md's compatibility rule: within a schema version, fields may
//! only be *appended* to an event; renaming, reordering, or removing a
//! field requires bumping `TRACE_SCHEMA_VERSION`. This test turns every
//! event shape a small E1 search emits into a skeleton — field names in
//! emission order, values replaced by type placeholders (`N` number,
//! `B` bool, `S` string) — and compares the sorted skeleton set against
//! `tests/golden/trace_schema.golden`. If this test fails you have
//! changed the wire format: either restore it, or bump the version and
//! regenerate the golden file deliberately.

use wave::apps::e1;
use wave::core::{JsonlTracer, TRACE_SCHEMA_VERSION};
use wave::{parse_property, Verifier, VerifyOptions};
use wave_svc::{parse_json, Json};

/// Reduce one trace line to its schema skeleton.
fn skeleton(line: &str) -> String {
    let json = parse_json(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
    let Json::Obj(pairs) = json else { panic!("trace line is not an object: {line}") };
    assert_eq!(pairs.first().map(|(k, _)| k.as_str()), Some("v"), "v leads: {line}");
    assert_eq!(pairs.get(1).map(|(k, _)| k.as_str()), Some("ev"), "ev is second: {line}");
    assert_eq!(pairs.last().map(|(k, _)| k.as_str()), Some("t_ns"), "t_ns trails: {line}");
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            let value = match (k.as_str(), v) {
                // version and tag are part of the schema, keep them
                ("v", _) | ("ev", _) => v.to_string(),
                (_, Json::Bool(_)) => "B".to_string(),
                (_, Json::Str(_)) => "S".to_string(),
                (_, Json::Num(_)) => "N".to_string(),
                _ => panic!("unexpected value shape in {line}"),
            };
            format!("\"{k}\":{value}")
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn trace_of(verifier: &Verifier, property: &str) -> String {
    let prop = parse_property(property).unwrap();
    let mut tracer = JsonlTracer::new(Vec::new());
    verifier.check_traced(&prop, &mut tracer).expect("check runs");
    assert!(tracer.take_error().is_none());
    String::from_utf8(tracer.into_inner()).unwrap()
}

#[test]
fn trace_schema_matches_the_golden_file() {
    assert_eq!(TRACE_SCHEMA_VERSION, 1, "version bump: regenerate the golden file");
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).unwrap();
    // three small runs that together emit every event type: a holding
    // property, a violated one (cycle), and a budget-exhausted one
    let mut lines = String::new();
    lines.push_str(&trace_of(&verifier, &suite.properties[0].text)); // P1, holds
    let p17 = suite.properties.iter().find(|c| c.name == "P17").unwrap();
    lines.push_str(&trace_of(&verifier, &p17.text)); // violated: cycle event
    let tight = Verifier::with_options(
        suite.spec.clone(),
        VerifyOptions { max_steps: Some(10), ..VerifyOptions::default() },
    )
    .unwrap();
    lines.push_str(&trace_of(&tight, &suite.properties[0].text)); // budget event

    let mut skeletons: Vec<String> = Vec::new();
    for line in lines.lines().filter(|l| !l.trim().is_empty()) {
        let s = skeleton(line);
        if !skeletons.contains(&s) {
            skeletons.push(s);
        }
    }
    skeletons.sort();
    let got = skeletons.join("\n") + "\n";
    let golden = include_str!("golden/trace_schema.golden");
    assert_eq!(
        got, golden,
        "trace schema drifted — fields may only be appended within a \
         version; otherwise bump TRACE_SCHEMA_VERSION and regenerate \
         tests/golden/trace_schema.golden"
    );
}
