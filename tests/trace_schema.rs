//! Golden-file pin of the JSONL trace schema (version 2).
//!
//! DESIGN.md's compatibility rule: within a schema version, fields may
//! only be *appended* to an event; renaming, reordering, or removing a
//! field requires bumping `TRACE_SCHEMA_VERSION`. This test turns every
//! event shape a small E1 search emits into a skeleton — field names in
//! emission order, values replaced by type placeholders (`N` number,
//! `B` bool, `S` string) — and compares the sorted skeleton set against
//! `tests/golden/trace_schema.golden`. If this test fails you have
//! changed the wire format: either restore it, or bump the version and
//! regenerate the golden file deliberately.
//!
//! Version 2 appended the `memo`, `join_build`, and `compact` event
//! kinds; every v1 event shape is unchanged, so v1 traces remain a
//! strict subset of v2 (pinned by `v1_traces_still_summarize`).

use wave::apps::e1;
use wave::core::{JsonlTracer, SearchTracer, TraceEvent, TRACE_SCHEMA_VERSION};
use wave::{parse_property, Verifier, VerifyOptions};
use wave_svc::{parse_json, Json};

/// Reduce one trace line to its schema skeleton.
fn skeleton(line: &str) -> String {
    let json = parse_json(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
    let Json::Obj(pairs) = json else { panic!("trace line is not an object: {line}") };
    assert_eq!(pairs.first().map(|(k, _)| k.as_str()), Some("v"), "v leads: {line}");
    assert_eq!(pairs.get(1).map(|(k, _)| k.as_str()), Some("ev"), "ev is second: {line}");
    assert_eq!(pairs.last().map(|(k, _)| k.as_str()), Some("t_ns"), "t_ns trails: {line}");
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            let value = match (k.as_str(), v) {
                // version and tag are part of the schema, keep them
                ("v", _) | ("ev", _) => v.to_string(),
                (_, Json::Bool(_)) => "B".to_string(),
                (_, Json::Str(_)) => "S".to_string(),
                (_, Json::Num(_)) => "N".to_string(),
                _ => panic!("unexpected value shape in {line}"),
            };
            format!("\"{k}\":{value}")
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

fn trace_of(verifier: &Verifier, property: &str) -> String {
    let prop = parse_property(property).unwrap();
    let mut tracer = JsonlTracer::new(Vec::new());
    verifier.check_traced(&prop, &mut tracer).expect("check runs");
    assert!(tracer.take_error().is_none());
    String::from_utf8(tracer.into_inner()).unwrap()
}

#[test]
fn trace_schema_matches_the_golden_file() {
    assert_eq!(TRACE_SCHEMA_VERSION, 2, "version bump: regenerate the golden file");
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).unwrap();
    // three small runs that together emit every run-derived event type:
    // a holding property, a violated one (cycle), and a budget-exhausted
    // one
    let mut lines = String::new();
    lines.push_str(&trace_of(&verifier, &suite.properties[0].text)); // P1, holds
    let p17 = suite.properties.iter().find(|c| c.name == "P17").unwrap();
    lines.push_str(&trace_of(&verifier, &p17.text)); // violated: cycle event
    let tight = Verifier::with_options(
        suite.spec.clone(),
        VerifyOptions { max_steps: Some(10), ..VerifyOptions::default() },
    )
    .unwrap();
    lines.push_str(&trace_of(&tight, &suite.properties[0].text)); // budget event

    // the store-dependent kinds (spill, compact) only fire on forced
    // out-of-core runs, so pin their wire shape directly
    let mut synth = JsonlTracer::new(Vec::new());
    synth.event(TraceEvent::Spill { unit: 0, core: 0, pairs: 1, segments: 1, compactions: 0 });
    synth.event(TraceEvent::Compact { unit: 0, core: 0, compactions: 1, segments: 1 });
    synth.event(TraceEvent::Memo { unit: 0, core: 0, hits: 1, misses: 1, evictions: 0 });
    synth.event(TraceEvent::JoinBuild { unit: 0, core: 0, builds: 1 });
    assert!(synth.take_error().is_none());
    lines.push_str(&String::from_utf8(synth.into_inner()).unwrap());

    let mut skeletons: Vec<String> = Vec::new();
    for line in lines.lines().filter(|l| !l.trim().is_empty()) {
        let s = skeleton(line);
        if !skeletons.contains(&s) {
            skeletons.push(s);
        }
    }
    skeletons.sort();
    let got = skeletons.join("\n") + "\n";
    let golden = include_str!("golden/trace_schema.golden");
    assert_eq!(
        got, golden,
        "trace schema drifted — fields may only be appended within a \
         version; otherwise bump TRACE_SCHEMA_VERSION and regenerate \
         tests/golden/trace_schema.golden"
    );
}

/// A v2 reader must keep decoding v1 traces: the version bump appended
/// event kinds, it did not change any existing shape. These lines are
/// verbatim from a pre-v2 `--trace-out` run.
#[test]
fn v1_traces_still_summarize() {
    let v1 = "\
{\"v\":1,\"ev\":\"core\",\"unit\":0,\"core\":0,\"t_ns\":100}\n\
{\"v\":1,\"ev\":\"expand\",\"depth\":0,\"succs\":3,\"dur_ns\":1500,\"t_ns\":200}\n\
{\"v\":1,\"ev\":\"intern\",\"hit\":true,\"t_ns\":300}\n\
{\"v\":1,\"ev\":\"phase\",\"candy\":false,\"depth\":1,\"t_ns\":400}\n\
{\"v\":1,\"ev\":\"spill\",\"unit\":0,\"core\":0,\"pairs\":12,\"segments\":1,\"compactions\":0,\"t_ns\":500}\n";
    let dir = std::env::temp_dir().join(format!("wave_v1_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("v1.jsonl");
    std::fs::write(&path, v1).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_wave"))
        .args(["trace", "summarize"])
        .arg(&path)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "summarize rejected a v1 trace: {stdout}");
    assert!(stdout.contains("5 events"), "{stdout}");
    assert!(stdout.contains("spill: 12 pairs in 1 segments, 0 compactions"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
