//! Integration tests for the verification fleet: remote workers over
//! the line-JSON protocol must reproduce sequential verdicts and
//! deterministic counters byte-for-byte — under 1, 2, and 4 workers,
//! with workers killed mid-unit, with straggler re-dispatch racing
//! duplicates, and with no workers at all (local fallback).

use std::time::Duration;
use wave::apps::{e1, e2, e3, e4};
use wave::spec::print_spec;
use wave::{parse_property, parse_spec, Verification, Verifier};
use wave_core::VerifyError;
use wave_ltl::Property;
use wave_svc::{CheckSource, FleetDispatcher, FleetOptions, SvcMetrics, WorkerConfig};

/// Fleet policy tuned for tests: fast heartbeats and a short local
/// fallback so worker-free and all-workers-dead scenarios settle in
/// milliseconds, not the production 30 s.
fn test_fleet_options() -> FleetOptions {
    FleetOptions {
        heartbeat: Duration::from_millis(100),
        heartbeat_grace: 10,
        lease_timeout: Duration::from_secs(20),
        retry_base: Duration::from_millis(10),
        retry_cap: Duration::from_millis(100),
        local_fallback_after: Duration::from_millis(300),
        ..FleetOptions::default()
    }
}

/// Run `props` through a dispatcher with one in-process worker per
/// entry of `aborts` (each entry is that worker's `--chaos-abort-unit`
/// value: `None` = healthy, `Some(n)` = vanish upon the nth run).
fn fleet_run(
    verifier: &Verifier,
    spec_text: &str,
    props: &[(String, Property)],
    aborts: &[Option<u64>],
    fopts: FleetOptions,
) -> Vec<Result<Verification, VerifyError>> {
    let prepared: Vec<_> =
        props.iter().map(|(_, p)| verifier.prepare(p).expect("prepares")).collect();
    let sources: Vec<_> = props
        .iter()
        .map(|(text, _)| CheckSource { spec: spec_text.to_string(), property: text.clone() })
        .collect();
    let dispatcher = FleetDispatcher::bind("127.0.0.1:0", fopts).expect("binds");
    let addr = dispatcher.local_addr().expect("bound address").to_string();
    std::thread::scope(|scope| {
        for (i, abort) in aborts.iter().enumerate() {
            let config = WorkerConfig {
                name: format!("w{i}"),
                abort_unit: *abort,
                ..WorkerConfig::new(addr.clone())
            };
            scope.spawn(move || {
                let _ = wave_svc::run_worker(&config);
            });
        }
        dispatcher.run_checks(verifier.options(), &prepared, &sources)
    })
}

fn parse_cases(suite: &wave::apps::AppSuite, names: &[&str]) -> Vec<(String, Property)> {
    names
        .iter()
        .map(|name| {
            let case = suite.properties.iter().find(|p| p.name == *name).unwrap();
            (case.text.clone(), parse_property(&case.text).expect("property parses"))
        })
        .collect()
}

/// The headline equivalence: E1–E4 subsets under 1, 2, and 4 workers —
/// with one worker killed mid-unit whenever there are at least two —
/// must match the sequential verdicts byte-for-byte, and (for clean
/// complete runs, where sibling cancellation cannot differ) the
/// deterministic search counters too.
#[test]
fn e1_e4_fleet_verdicts_match_sequential_across_worker_counts() {
    let suites = [
        (e1::suite(), vec!["P1", "P2", "P3", "P6"]),
        (e2::suite(), vec!["Q1", "Q2", "Q3", "Q4"]),
        (e3::suite(), vec!["R1", "R4", "R5"]),
        (e4::suite(), vec!["S1", "S4", "S5"]),
    ];
    for (suite, names) in &suites {
        let verifier = Verifier::new(suite.spec.clone()).expect("suite compiles");
        let spec_text = print_spec(&suite.spec);
        let props = parse_cases(suite, names);
        let sequential: Vec<_> =
            props.iter().map(|(_, p)| verifier.check(p).expect("sequential runs")).collect();
        for workers in [1usize, 2, 4] {
            // kill one worker upon its first run command when the fleet
            // has a survivor to re-dispatch to
            let mut aborts = vec![None; workers];
            if workers >= 2 {
                aborts[0] = Some(1);
            }
            let fleet = fleet_run(&verifier, &spec_text, &props, &aborts, test_fleet_options());
            for ((name, seq), result) in names.iter().zip(&sequential).zip(fleet) {
                let flt = result.expect("fleet check runs");
                let tag = format!("{}/{name} workers={workers}", suite.name);
                assert_eq!(
                    format!("{:?}", seq.verdict),
                    format!("{:?}", flt.verdict),
                    "{tag}: fleet verdict diverged"
                );
                assert_eq!(seq.complete, flt.complete, "{tag}");
                if seq.verdict.holds() && seq.complete {
                    assert_eq!(seq.stats.configs, flt.stats.configs, "{tag}");
                    assert_eq!(seq.stats.cores, flt.stats.cores, "{tag}");
                    assert_eq!(seq.stats.assignments, flt.stats.assignments, "{tag}");
                    assert_eq!(seq.stats.max_run_len, flt.stats.max_run_len, "{tag}");
                    assert_eq!(seq.stats.max_trie, flt.stats.max_trie, "{tag}");
                }
            }
        }
    }
}

fn minishop() -> (Verifier, String) {
    let src = r#"
        spec minishop {
          database { stock(item); }
          state { cart(item); }
          inputs { pick(x); button(x); }
          home A;
          page A {
            inputs { pick, button }
            options button(x) <- x = "add";
            options pick(x) <- stock(x);
            insert cart(x) <- pick(x) & button("add");
            target B <- (exists x: pick(x)) & button("add");
          }
          page B { target A <- true; }
        }
    "#;
    let spec = parse_spec(src).unwrap();
    let text = print_spec(&spec);
    (Verifier::new(spec).unwrap(), text)
}

/// Budget leases over a lossy transport: the settlement pass must
/// normalize whatever the lease policy did, so budgeted fleet runs —
/// even with a worker killed mid-unit — report the exact sequential
/// verdict, leftover budget, and counters.
#[test]
fn budgeted_fleet_runs_match_sequential_exactly() {
    let (unbudgeted, spec_text) = minishop();
    let texts = ["forall x: G !cart(x)", "forall x: G (cart(x) -> F cart(x))"];
    for text in texts {
        let prop = parse_property(text).unwrap();
        let full = unbudgeted.check(&prop).unwrap().stats.configs;
        for budget in [1, 2, full / 2, full, full + 1] {
            let (mut verifier, _) = minishop();
            verifier.options_mut().max_steps = Some(budget);
            let seq = verifier.check(&prop).unwrap();
            let props = vec![(text.to_string(), parse_property(text).unwrap())];
            let fleet =
                fleet_run(&verifier, &spec_text, &props, &[Some(1), None], test_fleet_options());
            let flt = fleet.into_iter().next().unwrap().expect("fleet check runs");
            let tag = format!("{text} budget={budget}");
            assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", flt.verdict), "{tag}");
            assert_eq!(seq.complete, flt.complete, "{tag}");
            assert_eq!(seq.stats.configs, flt.stats.configs, "{tag}");
            assert_eq!(seq.stats.cores, flt.stats.cores, "{tag}");
            assert_eq!(seq.stats.assignments, flt.stats.assignments, "{tag}");
        }
    }
}

/// No worker ever connects: the dispatcher's local fallback executor
/// must finish the session by itself with the exact sequential result.
#[test]
fn fleet_with_zero_workers_falls_back_to_local_execution() {
    let (verifier, spec_text) = minishop();
    let metrics = SvcMetrics::new();
    let fopts = FleetOptions {
        local_fallback_after: Duration::from_millis(50),
        metrics: Some(metrics.clone()),
        ..test_fleet_options()
    };
    let texts = ["G !@B", "forall x: G (cart(x) -> F cart(x))"];
    let props: Vec<_> = texts.iter().map(|t| (t.to_string(), parse_property(t).unwrap())).collect();
    let results = fleet_run(&verifier, &spec_text, &props, &[], fopts);
    for (text, result) in texts.iter().zip(results) {
        let seq = verifier.check(&parse_property(text).unwrap()).unwrap();
        let flt = result.expect("fleet check runs");
        assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", flt.verdict), "{text}");
    }
    assert!(metrics.fleet_local_units_total.get() > 0, "local executor did the work");
    assert_eq!(metrics.fleet_workers_total.get(), 0);
}

/// The sole worker dies mid-unit: its lease must be detected and the
/// whole session recovered by the local executor, with worker-death
/// accounting in the metrics.
#[test]
fn killed_single_worker_is_detected_and_work_recovered() {
    let (verifier, spec_text) = minishop();
    let metrics = SvcMetrics::new();
    let fopts = FleetOptions { metrics: Some(metrics.clone()), ..test_fleet_options() };
    let text = "forall x: G (cart(x) -> F cart(x))";
    let props = vec![(text.to_string(), parse_property(text).unwrap())];
    let results = fleet_run(&verifier, &spec_text, &props, &[Some(1)], fopts);
    let seq = verifier.check(&props[0].1).unwrap();
    let flt = results.into_iter().next().unwrap().expect("fleet check runs");
    assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", flt.verdict));
    assert!(seq.verdict.holds());
    assert_eq!(seq.stats.configs, flt.stats.configs);
    assert_eq!(metrics.fleet_worker_deaths_total.get(), 1, "the kill was detected");
    assert_eq!(metrics.fleet_workers_connected.get(), 0, "gauge drains after the session");
}

/// An aggressive lease timeout re-dispatches every in-flight unit to
/// idle workers; first completion wins and duplicates are discarded by
/// ordinal, so the verdict and counters still match sequential.
#[test]
fn straggler_redispatch_duplicates_are_discarded() {
    let (verifier, spec_text) = minishop();
    let metrics = SvcMetrics::new();
    let fopts = FleetOptions {
        lease_timeout: Duration::from_millis(1),
        metrics: Some(metrics.clone()),
        ..test_fleet_options()
    };
    let text = "forall x: G (cart(x) -> F cart(x))";
    let props = vec![(text.to_string(), parse_property(text).unwrap())];
    let results = fleet_run(&verifier, &spec_text, &props, &[None, None], fopts);
    let seq = verifier.check(&props[0].1).unwrap();
    let flt = results.into_iter().next().unwrap().expect("fleet check runs");
    assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", flt.verdict));
    assert_eq!(seq.stats.configs, flt.stats.configs, "duplicates must not double-count");
    assert_eq!(seq.stats.cores, flt.stats.cores);
}
