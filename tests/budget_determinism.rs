//! Budget-determinism suite (ISSUE 4): a budgeted parallel run must be
//! byte-identical to the sequential leftover-budget semantics — same
//! verdict, same exhausted-budget report, same counterexample, same
//! search counters — for any worker count and any lease chunk size.
//!
//! Each suite is probed for a step budget that exhausts *mid-suite*
//! (some properties decided, some `unknown`), which is exactly the
//! regime where the old per-unit budget copies diverged.

use wave::apps::AppSuite;
use wave::VerifyOptions;
use wave_svc::{lookup_suite, JobRecord, Json, ServiceConfig, VerifyService};

fn service(jobs: usize) -> VerifyService {
    VerifyService::new(ServiceConfig { jobs, use_cache: false, ..Default::default() })
        .expect("service starts")
}

fn budgeted(max_steps: u64) -> VerifyOptions {
    VerifyOptions {
        max_steps: Some(max_steps),
        state_store: test_store(),
        naive_joins: test_naive_joins(),
        slice: test_slice(),
        ..Default::default()
    }
}

/// The query-engine setting under test: on by default, off when the CI
/// matrix sets `WAVE_TEST_JOINS=naive`. Budget determinism must hold
/// with and without the plan optimizer and result memo.
fn test_naive_joins() -> bool {
    std::env::var("WAVE_TEST_JOINS").as_deref() == Ok("naive")
}

/// The slice setting under test: on by default, off when the CI matrix
/// sets `WAVE_TEST_SLICE=off`. Budget determinism must hold with and
/// without the dataflow slice.
fn test_slice() -> bool {
    std::env::var("WAVE_TEST_SLICE").as_deref() != Ok("off")
}

/// The store backend under test: interned by default, or the tiered
/// backend when the CI matrix sets `WAVE_TEST_STORE=tiered` (with an
/// optional `WAVE_TEST_STORE_MEM_KB` hot-tier budget). Budget
/// determinism must hold regardless of where the visited set lives.
fn test_store() -> wave::core::StateStoreKind {
    if std::env::var("WAVE_TEST_STORE").as_deref() != Ok("tiered") {
        return wave::core::StateStoreKind::default();
    }
    let mut params = wave::core::TierParams::default();
    if let Ok(kb) = std::env::var("WAVE_TEST_STORE_MEM_KB") {
        params.mem_bytes =
            kb.parse::<u64>().expect("WAVE_TEST_STORE_MEM_KB must be a KiB count") << 10;
    }
    wave::core::StateStoreKind::Tiered(params)
}

/// Render records to the deterministic part of their `--json` lines:
/// wall-clock (`stats.elapsed_ms`) and the per-phase profile (whose
/// timing counters and lease totals are chunk- and scheduling-dependent)
/// are stripped; every other byte must match.
fn normalized(records: &[JobRecord]) -> String {
    records
        .iter()
        .map(|r| {
            let Json::Obj(mut pairs) = r.to_json() else { panic!("record is an object") };
            for (key, value) in pairs.iter_mut() {
                if key == "stats" {
                    if let Json::Obj(stats) = value {
                        stats.retain(|(k, _)| k != "elapsed_ms" && k != "profile");
                    }
                }
            }
            Json::Obj(pairs).to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Find a step budget that exhausts the suite mid-way, and return it
/// with the sequential (`jobs = 1`) reference output.
fn pick_budget(suite: &AppSuite) -> (u64, String) {
    for budget in [16, 64, 200, 600, 2000, 8000] {
        let records = service(1).run_suite(suite, None, budgeted(budget));
        let unknown = records.iter().filter(|r| r.verdict == "unknown").count();
        let decided =
            records.iter().filter(|r| r.verdict == "holds" || r.verdict == "violated").count();
        assert!(records.iter().all(|r| r.verdict != "error"), "{}: {records:?}", suite.name);
        if unknown > 0 && decided > 0 {
            return (budget, normalized(&records));
        }
    }
    panic!("no candidate budget exhausts {} mid-suite", suite.name);
}

/// Worker counts to exercise: 1/2/8 always, plus whatever the CI matrix
/// injects through `WAVE_TEST_JOBS`.
fn jobs_under_test() -> Vec<usize> {
    let mut jobs = vec![1, 2, 8];
    if let Ok(extra) = std::env::var("WAVE_TEST_JOBS") {
        let extra: usize = extra.parse().expect("WAVE_TEST_JOBS must be a worker count");
        if !jobs.contains(&extra) {
            jobs.push(extra);
        }
    }
    jobs
}

fn suite_is_budget_deterministic(name: &str) {
    let suite = lookup_suite(name).expect("known suite");
    let (budget, reference) = pick_budget(&suite);
    for jobs in jobs_under_test() {
        let first = normalized(&service(jobs).run_suite(&suite, None, budgeted(budget)));
        let second = normalized(&service(jobs).run_suite(&suite, None, budgeted(budget)));
        assert_eq!(
            first, reference,
            "{name}: jobs={jobs} diverged from sequential at --max-steps {budget}"
        );
        assert_eq!(second, reference, "{name}: jobs={jobs} is unstable across runs");
    }
}

#[test]
fn e1_budgeted_output_is_jobs_invariant() {
    suite_is_budget_deterministic("E1");
}

#[test]
fn e2_budgeted_output_is_jobs_invariant() {
    suite_is_budget_deterministic("E2");
}

#[test]
fn e3_budgeted_output_is_jobs_invariant() {
    suite_is_budget_deterministic("E3");
}

#[test]
fn e4_budgeted_output_is_jobs_invariant() {
    suite_is_budget_deterministic("E4");
}

#[test]
fn lease_chunk_size_does_not_change_the_output() {
    let suite = lookup_suite("E1").expect("known suite");
    let (budget, reference) = pick_budget(&suite);
    for chunk in [1, 7] {
        let mut options = budgeted(budget);
        options.budget_chunk = chunk;
        let got = normalized(&service(8).run_suite(&suite, None, options));
        assert_eq!(got, reference, "budget_chunk={chunk} changed the output");
    }
}

#[test]
fn deadline_exhaustion_reports_actual_elapsed_never_zero() {
    // a 1ns deadline has passed before the search even starts; the old
    // code reported `time:0` when only the scheduler deadline (not the
    // per-unit copy) was set
    let suite = lookup_suite("E1").expect("known suite");
    let options = VerifyOptions {
        time_limit: Some(std::time::Duration::from_nanos(1)),
        ..Default::default()
    };
    for jobs in [1, 4] {
        let records = service(jobs).run_suite(&suite, Some("P4"), options.clone());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].verdict, "unknown", "jobs={jobs}: {records:?}");
        let budget = records[0].budget.as_deref().expect("unknown carries a budget");
        let secs: f64 = budget
            .strip_prefix("time:")
            .unwrap_or_else(|| panic!("jobs={jobs}: expected a time budget, got {budget:?}"))
            .parse()
            .expect("elapsed seconds parse");
        assert!(secs > 0.0, "jobs={jobs}: deadline report must carry actual elapsed: {budget:?}");
    }
}

#[test]
fn cached_records_byte_match_fresh_records() {
    let suite = lookup_suite("E1").expect("known suite");
    let svc = VerifyService::new(ServiceConfig { jobs: 4, ..Default::default() }).unwrap();
    // P17 is violated, P1 holds; a small budget adds an unknown so all
    // three verdict shapes cross the cache
    let (budget, _) = pick_budget(&suite);
    let fresh = svc.run_suite(&suite, None, budgeted(budget));
    let cached = svc.run_suite(&suite, None, budgeted(budget));
    assert!(cached.iter().all(|r| r.cached), "second run must be all cache hits");
    for (f, c) in fresh.iter().zip(&cached) {
        assert_eq!(f.name, c.name);
        assert_eq!(f.verdict, c.verdict, "{}", f.name);
        assert_eq!(f.budget, c.budget, "{}: cached budget string differs", f.name);
        assert_eq!(f.ce, c.ce, "{}: cached counterexample shape differs", f.name);
        assert_eq!(f.complete, c.complete, "{}", f.name);
    }
}

#[test]
fn cached_counterexample_traces_replay() {
    use wave::{parse_property, Verdict, Verifier};
    use wave_svc::{fingerprint, CachedResult, ResultCache};

    let suite = lookup_suite("E1").expect("known suite");
    let case = suite
        .properties
        .iter()
        .find(|c| c.name == "P17")
        .expect("E1 has the violated property P17");
    let verifier = Verifier::new(suite.spec.clone()).unwrap();
    let prop = parse_property(&case.text).unwrap();
    let v = verifier.check(&prop).unwrap();
    assert!(matches!(v.verdict, Verdict::Violated(_)), "P17 is violated: {:?}", v.verdict);

    // write the result through a disk cache and read it back cold
    let dir = std::env::temp_dir().join(format!("wave-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let canonical = wave::spec::print_spec(&suite.spec);
    let key = fingerprint(&canonical, &case.text, verifier.options());
    {
        let cache = ResultCache::with_dir(dir.clone()).unwrap();
        cache.put(&key, &CachedResult::from_verification(&v).unwrap());
    }
    let cache = ResultCache::with_dir(dir.clone()).unwrap();
    let hit = cache.get(&key).expect("disk hit");
    let ce = hit.counterexample().expect("hit carries the full trace");
    let Verdict::Violated(original) = &v.verdict else { unreachable!() };
    assert_eq!(ce, original, "persisted trace must round-trip exactly");
    verifier
        .validate_counterexample(&prop, ce)
        .expect("a cache-served counterexample replays like a fresh one");
    let _ = std::fs::remove_dir_all(&dir);
}
