//! Integration tests for the `wave-svc` verification service: the
//! parallel suite runner must reproduce sequential verdicts on E1
//! byte-for-byte, and counterexamples found under sibling cancellation
//! must replay cleanly.

use wave::apps::e1;
use wave::{parse_property, parse_spec, Verdict, Verifier};
use wave_svc::{run_prepared, ParallelOptions, ServiceConfig, VerifyService};

/// The E1 properties that run quickly in debug builds (the P4/P5/P7
/// exclusions mirror tests/integration_e1.rs).
const FAST: [&str; 14] =
    ["P1", "P2", "P3", "P6", "P8", "P9", "P10", "P11", "P12", "P13", "P14", "P15", "P16", "P17"];

#[test]
fn e1_parallel_suite_verdicts_match_sequential_exactly() {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).expect("E1 compiles");
    let cases: Vec<_> = suite.properties.iter().filter(|c| FAST.contains(&c.name)).collect();
    assert_eq!(cases.len(), FAST.len());

    let props: Vec<_> =
        cases.iter().map(|c| parse_property(&c.text).expect("property parses")).collect();
    let prepared: Vec<_> =
        props.iter().map(|p| verifier.prepare(p).expect("property prepares")).collect();
    let parallel = run_prepared(
        verifier.options(),
        &prepared,
        &ParallelOptions { jobs: 4, split_units: true, ..Default::default() },
    );

    for ((case, prop), result) in cases.iter().zip(&props).zip(parallel) {
        let seq = verifier.check(prop).expect("sequential check runs");
        let par = result.expect("parallel check runs");
        // byte-identical verdicts: same variant, same counterexample
        assert_eq!(
            format!("{:?}", seq.verdict),
            format!("{:?}", par.verdict),
            "E1/{}: parallel verdict diverged",
            case.name
        );
        assert_eq!(seq.verdict.holds(), case.holds, "E1/{}: wrong verdict", case.name);
        assert_eq!(seq.complete, par.complete, "E1/{}", case.name);
    }
}

#[test]
fn counterexample_found_under_sibling_cancellation_replays() {
    // the "promo" constant flows into cart, so the property gets several
    // C_∃ assignments (units); the violating unit's win cancels siblings
    // that are still mid-search
    let spec = parse_spec(
        r#"
        spec cancelshop {
          database { stock(item); }
          state { cart(item); }
          inputs { pick(x); button(x); }
          home A;
          page A {
            inputs { pick, button }
            options button(x) <- x = "add" | x = "promo";
            options pick(x) <- stock(x);
            insert cart(x) <- (pick(x) & button("add")) | (x = "promo" & button("promo"));
            target B <- button("add") | button("promo");
          }
          page B { target A <- true; }
        }
    "#,
    )
    .unwrap();
    let verifier = Verifier::new(spec).unwrap();
    let prop = parse_property("forall x: G !cart(x)").unwrap();

    let prepared = verifier.prepare(&prop).unwrap();
    assert!(prepared.num_units() > 1, "the test needs a multi-unit check to exercise cancellation");

    for jobs in [2, 4, 8] {
        let popts = ParallelOptions { jobs, split_units: true, ..Default::default() };
        let v = wave_svc::check_parallel(&verifier, &prop, &popts).unwrap();
        let Verdict::Violated(ce) = &v.verdict else {
            panic!("jobs={jobs}: expected a violation, got {:?}", v.verdict)
        };
        verifier
            .validate_counterexample(&prop, ce)
            .unwrap_or_else(|e| panic!("jobs={jobs}: counterexample failed replay: {e}"));
        // and it is the same counterexample the sequential scan finds
        let seq = verifier.check(&prop).unwrap();
        assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", v.verdict), "jobs={jobs}");
    }
}

#[test]
fn suite_service_caches_between_runs() {
    let svc = VerifyService::new(ServiceConfig { jobs: 4, ..Default::default() }).unwrap();
    let suite = e1::suite();
    let options = wave::VerifyOptions::default();
    let first = svc.run_suite(&suite, Some("P1"), options.clone());
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].verdict, "holds");
    assert!(!first[0].cached);
    assert!(first[0].stats.cores > 0);

    let second = svc.run_suite(&suite, Some("P1"), options);
    assert_eq!(second[0].verdict, "holds");
    assert!(second[0].cached, "second run must hit the cache");
    assert_eq!(second[0].stats.cores, 0, "cache hits do no search");
}
