//! Observability integration tests.
//!
//! Two guarantees from DESIGN.md's Observability section are checked end
//! to end here:
//!
//! 1. `wave serve` exposes its metrics both on the job socket
//!    (`{"cmd":"metrics"}`) and, with `metrics_addr` set, as Prometheus
//!    text exposition — and the counters actually move when a check runs.
//! 2. Tracing is observation-only: verdicts, counterexample lassos, and
//!    the deterministic search counters are byte-identical with and
//!    without a tracer attached, across all four benchmark suites.
//! 3. Span profiling is observation-only too: `check_profiled` with a
//!    live [`SpanProfiler`] reaches the same deterministic outcome as a
//!    plain `check`, including under the tiered out-of-core store and
//!    (behind `WAVE_TEST_PROFILE=1`) on a memo-heavy search.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use wave::apps::{e1, e2, e3, e4, AppSuite};
use wave::core::{JsonlTracer, SpanProfiler, StateStoreKind, TierParams, VerifyOptions};
use wave::{parse_property, Verdict, Verifier};
use wave_svc::{parse_json, Json, Server, ServerConfig};

const MINI: &str = r#"spec m { inputs { b(x); } home A; page A { inputs { b } options b(x) <- x = \"g\"; target B <- b(\"g\"); } page B { target A <- true; } }"#;

fn send(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    parse_json(response.trim()).unwrap()
}

fn metric(metrics: &Json, name: &str) -> u64 {
    let v = metrics.get(name).unwrap_or_else(|| panic!("missing {name}: {metrics}"));
    v.as_u64().or_else(|| v.as_f64().map(|f| f as u64)).unwrap()
}

#[test]
fn serve_exposes_metrics_on_socket_and_prometheus_listener() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        read_timeout: Duration::from_secs(10),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let prom_addr = server.metrics_addr().expect("metrics listener bound");
    let handle = std::thread::spawn(move || server.run());

    let mut client = TcpStream::connect(addr).unwrap();
    let before = send(&mut client, r#"{"cmd":"metrics"}"#);
    assert_eq!(before.get("ok").and_then(Json::as_bool), Some(true));
    let before = before.get("metrics").unwrap();
    assert_eq!(metric(before, "wave_checks_total"), 0);
    assert_eq!(metric(before, "wave_connections_active"), 1);
    let latency = before.get("wave_unit_latency_ns").unwrap();
    assert_eq!(latency.get("count").and_then(Json::as_u64), Some(0));
    assert_eq!(latency.get("sum").and_then(Json::as_u64), Some(0));

    let job = format!(r#"{{"spec":"{MINI}","property":"G (@B -> X @A)"}}"#);
    let reply = send(&mut client, &job);
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true), "{reply}");

    let after = send(&mut client, r#"{"cmd":"metrics"}"#);
    let after = after.get("metrics").unwrap();
    assert_eq!(metric(after, "wave_checks_total"), 1, "the check was counted");
    assert_eq!(metric(after, "wave_checks_inflight"), 0);
    assert_eq!(metric(after, "wave_cache_misses_total"), 1);
    assert_eq!(metric(after, "wave_cache_hits_total"), 0);
    assert!(metric(after, "wave_requests_total") >= 3, "{after}");
    let latency = after.get("wave_unit_latency_ns").unwrap();
    assert!(latency.get("count").and_then(Json::as_u64).unwrap() > 0, "units were timed");

    // the same job again is a cache hit, not a new check
    send(&mut client, &job);
    let hit = send(&mut client, r#"{"cmd":"metrics"}"#);
    let hit = hit.get("metrics").unwrap();
    assert_eq!(metric(hit, "wave_checks_total"), 1);
    assert_eq!(metric(hit, "wave_cache_hits_total"), 1);

    // the Prometheus listener serves the same registry as text exposition
    let mut prom = TcpStream::connect(prom_addr).unwrap();
    write!(prom, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    prom.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("text/plain; version=0.0.4"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains("# TYPE wave_checks_total counter"), "{body}");
    assert!(body.contains("wave_checks_total 1"), "{body}");
    assert!(body.contains("# TYPE wave_unit_latency_ns histogram"), "{body}");
    assert!(body.contains("wave_unit_latency_ns_count"), "{body}");

    let bye = send(&mut client, r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    drop(client);
    handle.join().unwrap().unwrap();
}

/// The deterministic portion of a verification outcome: verdict (with
/// the full counterexample lasso) plus every non-timing search counter.
fn outcome(v: &wave::Verification) -> (String, u64, u64, u64, usize, usize, u64, u64) {
    (
        format!("{:?}", v.verdict),
        v.stats.configs,
        v.stats.cores,
        v.stats.assignments,
        v.stats.max_run_len,
        v.stats.max_trie,
        v.stats.profile.intern_hits,
        v.stats.profile.intern_misses,
    )
}

fn assert_tracing_is_observation_only(suite: &AppSuite, names: &[&str]) {
    let verifier = Verifier::new(suite.spec.clone()).expect("spec compiles");
    for case in suite.properties.iter().filter(|c| names.contains(&c.name)) {
        let property = parse_property(&case.text).unwrap();
        let plain = verifier.check(&property).expect("untraced check runs");
        let mut tracer = JsonlTracer::new(Vec::new());
        let traced = verifier.check_traced(&property, &mut tracer).expect("traced check runs");
        assert_eq!(
            outcome(&plain),
            outcome(&traced),
            "{}/{}: tracing changed the search",
            suite.name,
            case.name
        );
        if matches!(traced.verdict, Verdict::Holds | Verdict::Violated(_)) {
            assert!(tracer.take_error().is_none());
        }
    }
}

/// Like [`assert_tracing_is_observation_only`], but for the monomorphized
/// span profiler: `check_profiled` with a live [`SpanProfiler`] must
/// reproduce the plain check's verdict and deterministic counters.
fn assert_profiling_is_observation_only(suite: &AppSuite, names: &[&str], options: VerifyOptions) {
    let verifier = Verifier::with_options(suite.spec.clone(), options).expect("spec compiles");
    for case in suite.properties.iter().filter(|c| names.contains(&c.name)) {
        let property = parse_property(&case.text).unwrap();
        let plain = verifier.check(&property).expect("unprofiled check runs");
        let mut profiler = SpanProfiler::new();
        let profiled =
            verifier.check_profiled(&property, &mut profiler).expect("profiled check runs");
        assert_eq!(
            outcome(&plain),
            outcome(&profiled),
            "{}/{}: profiling changed the search",
            suite.name,
            case.name
        );
        assert!(
            profiler.rows().iter().any(|r| r.label == "expand"),
            "{}/{}: the profiler saw no expand spans",
            suite.name,
            case.name
        );
        assert_eq!(profiler.open_depth(), 0, "span frames must balance");
    }
}

#[test]
fn tracing_is_observation_only_e1() {
    assert_tracing_is_observation_only(&e1::suite(), &["P1", "P2", "P13", "P17"]);
}

#[test]
fn profiling_is_observation_only_e1() {
    assert_profiling_is_observation_only(&e1::suite(), &["P1", "P17"], VerifyOptions::default());
}

#[test]
fn profiling_is_observation_only_under_the_tiered_store() {
    // a pathologically small memory budget forces every core to spill,
    // exercising the spill/compact leaf spans alongside the search spans
    let options = VerifyOptions {
        state_store: StateStoreKind::Tiered(TierParams { mem_bytes: 1, spill_dir: None }),
        ..VerifyOptions::default()
    };
    assert_profiling_is_observation_only(&e1::suite(), &["P1", "P2"], options);
}

/// Memo-heavy equivalence: E1/P5 drives far more rule evaluations (and
/// therefore memo traffic) than the quick properties above. It costs
/// tens of seconds in a debug build, so the CI profiling leg opts in
/// with `WAVE_TEST_PROFILE=1`.
#[test]
fn profiling_is_observation_only_memo_heavy() {
    if std::env::var("WAVE_TEST_PROFILE").map(|v| v != "1").unwrap_or(true) {
        eprintln!("skipping memo-heavy profiled run (set WAVE_TEST_PROFILE=1)");
        return;
    }
    assert_profiling_is_observation_only(&e1::suite(), &["P5"], VerifyOptions::default());
}

#[test]
fn tracing_is_observation_only_e2() {
    let suite = e2::suite();
    let all: Vec<&str> = suite.properties.iter().map(|c| c.name).collect();
    assert_tracing_is_observation_only(&suite, &all);
}

#[test]
fn tracing_is_observation_only_e3() {
    assert_tracing_is_observation_only(&e3::suite(), &["R1", "R4", "R12"]);
}

#[test]
fn tracing_is_observation_only_e4() {
    assert_tracing_is_observation_only(&e4::suite(), &["S1", "S5", "S12"]);
}
