//! Span-profiler integration tests.
//!
//! Pins the three contracts the profiler ships with:
//!
//! 1. **Attribution accuracy** — on a memo-heavy search (E1/P5) the
//!    span totals agree with the independently-kept [`SearchProfile`]
//!    phase timers: the eval/intern/visit leaf spans are fed the same
//!    measured intervals, so they match exactly; the expand span is
//!    timed by its own enter/exit pair, so it must land within 5%.
//! 2. **Folded-stack format** — `SpanProfiler::fold` and `wave prof
//!    flame` emit `stack;frames self_ns` lines that inferno /
//!    flamegraph.pl accept: one trailing integer, `;`-joined non-empty
//!    frames, no other whitespace.
//! 3. **Ledger trend** — `wave bench --trend` renders a per-row delta
//!    table with sparklines across three or more ledger entries.

use std::path::PathBuf;
use std::process::Command;
use wave::apps::e1;
use wave::core::{SpanProfiler, NO_INDEX};
use wave::{parse_property, Verifier};

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs").join(name)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wave_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One folded line: `frame(;frame)* self_ns` — what inferno's folded
/// parser expects. Returns the parsed sample count.
fn assert_folded_line(line: &str) -> u64 {
    let (stack, count) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no count: {line:?}"));
    assert!(!stack.is_empty(), "empty stack: {line:?}");
    for frame in stack.split(';') {
        assert!(!frame.is_empty(), "empty frame in {line:?}");
        assert!(!frame.contains(char::is_whitespace), "whitespace in frame: {line:?}");
    }
    count.parse().unwrap_or_else(|e| panic!("bad count in {line:?}: {e}"))
}

#[test]
fn attribution_agrees_with_phase_timers_on_e1_p5() {
    let suite = e1::suite();
    let verifier = Verifier::new(suite.spec.clone()).unwrap();
    let case = suite.properties.iter().find(|c| c.name == "P5").unwrap();
    let property = parse_property(&case.text).unwrap();
    let mut profiler = SpanProfiler::new();
    let v = verifier.check_profiled(&property, &mut profiler).expect("profiled check runs");
    assert!(v.verdict.holds(), "{:?}", v.verdict);
    assert_eq!(profiler.open_depth(), 0, "span frames must balance");

    // the leaf phases feed profiler and SearchProfile the same measured
    // interval, so agreement is exact
    let p = &v.stats.profile;
    assert_eq!(profiler.self_ns_of("eval"), p.eval_ns);
    assert_eq!(profiler.self_ns_of("intern"), p.intern_ns);
    assert_eq!(profiler.self_ns_of("visit"), p.visit_ns);

    // expand is timed twice, independently: by the SearchProfile phase
    // timer and by the span's own enter/exit pair — within 5% (the
    // acceptance bound; measured skew is ~0.03%)
    let span_ns = profiler.total_ns_of("expand", NO_INDEX) as f64;
    let phase_ns = p.expand_ns as f64;
    assert!(phase_ns > 0.0, "P5 must spend time expanding");
    let ratio = span_ns / phase_ns;
    assert!((0.95..=1.05).contains(&ratio), "expand span/timer ratio drifted: {ratio}");

    // the in-process fold is already inferno-shaped
    let folded = profiler.fold();
    assert!(!folded.is_empty(), "a profiled run must fold to at least one stack");
    let total: u64 = folded.iter().map(|l| assert_folded_line(l)).sum();
    assert!(total > 0, "folded self-times must be non-zero");
    assert!(
        folded.iter().any(|l| l.contains("query:")),
        "per-query frames must appear in the fold: {folded:?}"
    );
}

#[test]
fn profile_out_and_prof_flame_roundtrip() {
    let dir = temp_dir("prof_cli");
    let profile = dir.join("profile.json");
    let out = Command::new(env!("CARGO_BIN_EXE_wave"))
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
            "--profile-out",
            profile.to_str().unwrap(),
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));
    let report = std::fs::read_to_string(&profile).expect("profile written");
    assert!(report.contains("\"queries\""), "{report}");

    let flame = Command::new(env!("CARGO_BIN_EXE_wave"))
        .args(["prof", "flame", profile.to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert_eq!(flame.status.code(), Some(0), "{flame:?}");
    let stdout = String::from_utf8(flame.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "prof flame emitted nothing");
    for line in lines {
        assert_folded_line(line);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_trend_renders_deltas_across_three_entries() {
    let dir = temp_dir("prof_trend");
    let ledger = dir.join("LEDGER.jsonl");
    let mut text = String::new();
    for (rev, ms) in [("aaa111", 10.0), ("bbb222", 14.0), ("ccc333", 12.0)] {
        text.push_str(&format!(
            "{{\"v\":1,\"kind\":\"store\",\"rev\":\"{rev}\",\"fingerprint\":\"f\",\
             \"knobs\":{{\"budgets_mb\":[64]}},\"rows\":[{{\"suite\":\"E9\",\"prop\":\"P1\",\
             \"mem_mb\":64,\"elapsed_ms\":{ms}}}]}}\n"
        ));
    }
    std::fs::write(&ledger, text).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_wave"))
        .args(["bench", "--trend", "--ledger", ledger.to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("ledger trend — store (3 entries: aaa111 → bbb222 → ccc333)"),
        "{stdout}"
    );
    assert!(stdout.contains("E9/P1 @64MiB"), "{stdout}");
    assert!(stdout.contains("+20.0%"), "first→last delta: {stdout}");
    assert!(stdout.contains("▁█▅"), "sparkline over the series: {stdout}");
    assert!(stdout.contains("suite total"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
