//! Cross-validation: the wave verifier (pseudorun NDFS with pruning
//! heuristics) against the explicit-state baseline (`wave-naive`) on
//! miniature specifications where the explicit search is tractable.
//!
//! Where both terminate, a `Violated` from either must be matched by the
//! other, and `Holds` (complete mode) must coincide with the baseline's
//! bounded pass — this exercises the full stack end to end from opposite
//! directions.

use std::time::Duration;
use wave::{parse_spec, NaiveOptions, NaiveVerdict, NaiveVerifier, Spec, Verifier};

fn pingpong() -> Spec {
    parse_spec(
        r#"
        spec pingpong {
          inputs { button(x); }
          home A;
          page A {
            inputs { button }
            options button(x) <- x = "go" | x = "stay";
            target B <- button("go");
          }
          page B { target A <- true; }
        }
    "#,
    )
    .unwrap()
}

fn gate() -> Spec {
    // a state-carrying spec: a door that opens only with the right key
    parse_spec(
        r#"
        spec gate {
          database { keys(k); }
          state { open(); }
          inputs { trykey(k); button(x); }
          home OUT;
          page OUT {
            inputs { trykey, button }
            options button(x) <- x = "push";
            options trykey(k) <- keys(k);
            insert open() <- (exists k: trykey(k)) & button("push");
            target IN <- (exists k: trykey(k)) & button("push");
          }
          page IN {
            inputs { button }
            options button(x) <- x = "leave";
            delete open() <- open() & button("leave");
            target OUT <- button("leave");
          }
        }
    "#,
    )
    .unwrap()
}

fn naive_opts() -> NaiveOptions {
    NaiveOptions {
        fresh_values: 1,
        max_tuples_per_relation: 8,
        max_steps: Some(500_000),
        time_limit: Some(Duration::from_secs(60)),
    }
}

fn cross_check(spec: Spec, property: &str) {
    let wave_verdict =
        Verifier::new(spec.clone()).expect("compiles").check_str(property).expect("wave runs");
    let (naive_verdict, _) = NaiveVerifier::new(spec, naive_opts())
        .expect("compiles")
        .check_str(property)
        .expect("naive runs");
    match naive_verdict {
        NaiveVerdict::Violated => assert!(
            wave_verdict.verdict.violated(),
            "{property}: naive found a violation, wave says {:?}",
            wave_verdict.verdict
        ),
        NaiveVerdict::HoldsBounded => assert!(
            wave_verdict.verdict.holds(),
            "{property}: naive holds (bounded), wave says {:?}",
            wave_verdict.verdict
        ),
        other => panic!("baseline did not finish: {other:?}"),
    }
}

#[test]
fn pingpong_properties_agree() {
    for property in [
        "@A",
        "F @B",
        "G !@B",
        "G (@A -> X (@A | @B))",
        "G (@B -> X @A)",
        "F (G @A)",
        "G (F @A)",
        r#"button("go") -> F @B"#,
    ] {
        cross_check(pingpong(), property);
    }
}

#[test]
fn gate_properties_agree() {
    for property in [
        "G (@IN -> open())",
        "open() B @IN",
        "G !@IN",
        "(G (exists x: button(x))) -> F @IN",
        "G (open() -> X (open() | @OUT))",
    ] {
        cross_check(gate(), property);
    }
}

#[test]
fn heuristics_off_agree_with_baseline_on_gate() {
    // disable both heuristics (feasible on this miniature spec) and check
    // the verdicts still match the explicit baseline
    for property in ["G (@IN -> open())", "G !@IN"] {
        let mut verifier = Verifier::new(gate()).expect("compiles");
        verifier.options_mut().heuristic1 = false;
        verifier.options_mut().heuristic2 = false;
        let v = verifier.check_str(property).expect("wave runs");
        let (naive_verdict, _) = NaiveVerifier::new(gate(), naive_opts())
            .expect("compiles")
            .check_str(property)
            .expect("naive runs");
        assert_eq!(v.verdict.holds(), naive_verdict == NaiveVerdict::HoldsBounded, "{property}");
    }
}
