//! Verdict stability across verifier modes: the same property on the same
//! specification must get the same verdict whether rules run as compiled
//! plans or interpreted, whether extension pruning is paper-strict or
//! option-support, and whether `C_∃` uses distinct-fresh or exhaustive
//! equality patterns. (Each mode trades work for precision differently;
//! verdicts must not depend on the trade.)

use wave::core::{ExtensionPruning, ParamMode};
use wave::{Verifier, VerifyOptions};
use wave_apps::e2;

fn verdicts_with(options: VerifyOptions) -> Vec<(String, bool)> {
    let suite = e2::suite();
    let verifier = Verifier::with_options(suite.spec.clone(), options).unwrap();
    suite
        .properties
        .iter()
        .map(|p| {
            let v = verifier.check_str(&p.text).expect("verifies");
            (p.name.to_string(), v.verdict.holds())
        })
        .collect()
}

#[test]
fn e2_suite_is_stable_across_modes() {
    let baseline = verdicts_with(VerifyOptions::default());
    // every property's verdict matches the suite expectation to begin with
    for (case, (name, holds)) in e2::properties().iter().zip(&baseline) {
        assert_eq!(case.name, name);
        assert_eq!(case.holds, *holds, "{name}");
    }

    let interp = VerifyOptions { use_plans: false, ..Default::default() };
    assert_eq!(baseline, verdicts_with(interp), "interpreted rules");

    let exhaustive =
        VerifyOptions { param_mode: ParamMode::ExhaustiveEquality, ..Default::default() };
    assert_eq!(baseline, verdicts_with(exhaustive), "exhaustive C_∃ equality");
}

/// Paper-strict pruning is complete for the paper's literal heuristic but
/// can make option-fed pages unreachable; on the browsing-only E2 most
/// properties survive, and none may flip from false to true *and* from
/// true to false inconsistently with the strict semantics. We assert the
/// exact strict-mode verdicts so any change is conscious.
#[test]
fn e2_paper_strict_verdicts_are_documented() {
    let strict = VerifyOptions { pruning: ExtensionPruning::PaperStrict, ..Default::default() };
    let verdicts = verdicts_with(strict);
    for (name, holds) in &verdicts {
        match name.as_str() {
            // reachability-through-options properties become vacuous or
            // unreachable under the strict heuristic:
            // Q5 (TDP only via pick) stays true; Q13 (F @GDP) stays false
            // because the empty-input idle run still exists.
            "Q1" | "Q2" | "Q3" | "Q5" | "Q7" | "Q12" => {
                assert!(*holds, "{name} should hold under paper-strict")
            }
            "Q4" | "Q8" | "Q9" | "Q10" | "Q11" | "Q13" => {
                assert!(!*holds, "{name} should fail under paper-strict")
            }
            // Q6 ((F @TLP) -> F @PLP) stays false: both pages are reached
            // by buttons, no options involved
            "Q6" => assert!(!*holds, "{name}"),
            other => panic!("unknown property {other}"),
        }
    }
}
