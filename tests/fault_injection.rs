//! Fault-injection integration tests: panic a connection handler, kill
//! a fleet worker mid-unit, starve an idle connection, and interrupt a
//! cache persist — the service must keep serving, drain cleanly, count
//! every fault in its metrics, and keep fleet verdicts byte-identical
//! to sequential.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use wave::spec::print_spec;
use wave::{parse_property, parse_spec, Verifier};
use wave_svc::{
    fingerprint, CheckSource, FleetDispatcher, FleetOptions, Json, Server, ServerConfig,
    SvcMetrics, WorkerConfig,
};

const SPEC: &str = r#"spec m { inputs { b(x); } home A; page A { inputs { b } options b(x) <- x = "g"; target B <- b("g"); } page B { target A <- true; } }"#;

fn send(stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    wave_svc::parse_json(response.trim()).unwrap()
}

fn job_line(property: &str) -> String {
    format!(r#"{{"spec":{},"property":{}}}"#, Json::from(SPEC), Json::from(property))
}

fn metric(stream: &mut TcpStream, name: &str) -> u64 {
    let reply = send(stream, r#"{"cmd":"metrics"}"#);
    reply
        .get("metrics")
        .and_then(|m| m.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metric {name} missing or not an integer"))
}

/// A `{"cmd":"panic"}` request kills its handler — the slot guard must
/// release the connection slot and the server must keep accepting more
/// connections than `max_connections` panics, serve real work, and
/// drain to a clean shutdown.
#[test]
fn panicking_handler_releases_slot_and_server_keeps_serving() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        max_connections: 2,
        chaos: true,
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    // more panics than there are connection slots: only a leak-free
    // handler lets the later connections through
    for _ in 0..5 {
        let mut victim = TcpStream::connect(addr).unwrap();
        victim.write_all(b"{\"cmd\":\"panic\"}\n").unwrap();
        victim.flush().unwrap();
        // the handler dies without replying; the connection just closes
        let mut buf = Vec::new();
        let n = victim.read_to_end(&mut buf).unwrap();
        assert_eq!(n, 0, "a panicked handler must not send a reply");
    }

    let mut client = TcpStream::connect(addr).unwrap();
    let pong = send(&mut client, r#"{"cmd":"ping"}"#);
    assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true), "server still serves");
    let reply = send(&mut client, &job_line("G (@B -> X @A)"));
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    let results = reply.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get("verdict").and_then(Json::as_str), Some("holds"));

    assert_eq!(metric(&mut client, "wave_handler_panics_total"), 5);
    assert_eq!(metric(&mut client, "wave_connections_active"), 1, "victims fully released");

    let bye = send(&mut client, r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    drop(client);
    handle.join().unwrap().unwrap();
}

/// An idle client trips the socket timeout; the server counts it and
/// keeps serving.
#[test]
fn idle_connection_times_out_is_counted_and_server_survives() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(100),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mut idler = TcpStream::connect(addr).unwrap();
    // send nothing: the read times out server-side and the connection
    // is dropped
    let mut buf = Vec::new();
    let n = idler.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "timed-out connection closes without data");

    let mut client = TcpStream::connect(addr).unwrap();
    assert_eq!(
        send(&mut client, r#"{"cmd":"ping"}"#).get("pong").and_then(Json::as_bool),
        Some(true)
    );
    assert!(metric(&mut client, "wave_conn_timeouts_total") >= 1);

    let bye = send(&mut client, r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    drop(client);
    handle.join().unwrap().unwrap();
}

/// Interrupt the disk-cache persist (a directory squats on the temp
/// path, so the atomic write cannot even start): the failure is
/// counted, nothing half-written is published, and the entry still
/// serves from memory.
#[test]
fn interrupted_cache_persist_is_counted_and_serving_continues() {
    let dir = std::env::temp_dir().join(format!("wave-fault-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // the service keys the cache by fingerprint(canonical spec,
    // property, options) — compute it the same way to squat the slot
    let property = "G (@B -> X @A)";
    let canonical = print_spec(&parse_spec(SPEC).unwrap());
    let key = fingerprint(&canonical, property, &wave::VerifyOptions::default());
    std::fs::create_dir(dir.join(format!("{key}.json.tmp"))).unwrap();

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        cache_dir: Some(dir.clone()),
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let mut client = TcpStream::connect(addr).unwrap();
    let reply = send(&mut client, &job_line(property));
    let results = reply.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get("verdict").and_then(Json::as_str), Some("holds"));
    assert_eq!(results[0].get("cached").and_then(Json::as_bool), Some(false));

    assert_eq!(metric(&mut client, "wave_cache_persist_errors_total"), 1);
    assert!(!dir.join(format!("{key}.json")).exists(), "no half-written entry published");

    // the result still serves — from the memory tier
    let again = send(&mut client, &job_line(property));
    let results = again.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get("verdict").and_then(Json::as_str), Some("holds"));
    assert_eq!(results[0].get("cached").and_then(Json::as_bool), Some(true));

    let bye = send(&mut client, r#"{"cmd":"shutdown"}"#);
    assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
    drop(client);
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill a fleet worker mid-unit while a healthy one races on: the
/// dispatcher detects the death, re-dispatches, and the verdict and
/// counters stay byte-identical to the sequential run.
#[test]
fn fleet_worker_killed_mid_unit_keeps_verdict_byte_identical() {
    let spec = parse_spec(
        r#"
        spec faultshop {
          database { stock(item); }
          state { cart(item); }
          inputs { pick(x); button(x); }
          home A;
          page A {
            inputs { pick, button }
            options button(x) <- x = "add";
            options pick(x) <- stock(x);
            insert cart(x) <- pick(x) & button("add");
            target B <- (exists x: pick(x)) & button("add");
          }
          page B { target A <- true; }
        }
    "#,
    )
    .unwrap();
    let spec_text = print_spec(&spec);
    let verifier = Verifier::new(spec).unwrap();
    let prop = parse_property("forall x: G (cart(x) -> F cart(x))").unwrap();
    let seq = verifier.check(&prop).unwrap();

    let metrics = SvcMetrics::new();
    let fopts = FleetOptions {
        heartbeat: Duration::from_millis(100),
        retry_base: Duration::from_millis(10),
        local_fallback_after: Duration::from_millis(300),
        metrics: Some(metrics.clone()),
        ..FleetOptions::default()
    };
    let dispatcher = FleetDispatcher::bind("127.0.0.1:0", fopts).unwrap();
    let addr = dispatcher.local_addr().unwrap().to_string();
    let prepared = verifier.prepare(&prop).unwrap();
    let source =
        CheckSource { spec: spec_text, property: "forall x: G (cart(x) -> F cart(x))".to_string() };
    let results = std::thread::scope(|scope| {
        for (name, abort) in [("killed", Some(1)), ("healthy", None)] {
            let config = WorkerConfig {
                name: name.to_string(),
                abort_unit: abort,
                ..WorkerConfig::new(addr.clone())
            };
            scope.spawn(move || {
                let _ = wave_svc::run_worker(&config);
            });
        }
        dispatcher.run_checks(
            verifier.options(),
            std::slice::from_ref(&prepared),
            std::slice::from_ref(&source),
        )
    });
    let flt = results.into_iter().next().unwrap().expect("fleet check runs");
    assert_eq!(format!("{:?}", seq.verdict), format!("{:?}", flt.verdict));
    assert_eq!(seq.stats.configs, flt.stats.configs);
    assert_eq!(seq.stats.cores, flt.stats.cores);
    assert_eq!(metrics.fleet_worker_deaths_total.get(), 1);
    assert_eq!(metrics.fleet_workers_connected.get(), 0, "session drained both workers");
}
