//! Query-engine equivalence suite (ISSUE 7): the cardinality-guided
//! optimizer, the hash-join lowering and the delta-driven result memo
//! must be observationally identical to the naive nested-loop engine —
//! same verdicts, same deterministic search counters, byte-identical
//! counterexample renderings — across every property of all four
//! benchmark applications.
//!
//! `WAVE_TEST_JOINS=naive` (the CI matrix leg) flips the *default* side
//! of each comparison to the ablation too, so the whole integration
//! test binary also runs green with the engine disabled.

use wave::apps::AppSuite;
use wave::{Verdict, Verifier, VerifyOptions};

/// Heavyweights excluded from the *debug* sweeps, mirroring
/// `store_tiered.rs` — release runs and the CI bench gate cover them.
#[cfg(debug_assertions)]
const SWEEP_EXCLUDE: [(&str, &str); 3] = [("E1", "P5"), ("E1", "P7"), ("E3", "R9")];
#[cfg(not(debug_assertions))]
const SWEEP_EXCLUDE: [(&str, &str); 0] = [];

fn suite(name: &str) -> AppSuite {
    match name {
        "E1" => wave::apps::e1::suite(),
        "E2" => wave::apps::e2::suite(),
        "E3" => wave::apps::e3::suite(),
        "E4" => wave::apps::e4::suite(),
        other => panic!("unknown suite {other}"),
    }
}

/// Everything the engine determines about one property: verdict shape,
/// the deterministic stats columns, and the rendered counterexample.
/// Memo/join counters are deliberately absent — they are the knob under
/// test, not part of the observable result.
#[derive(Debug, PartialEq)]
struct Outcome {
    name: String,
    verdict: String,
    configs: u64,
    cores: u64,
    assignments: u64,
    max_trie: usize,
    max_run_len: usize,
    counterexample: Option<String>,
}

/// `(outcomes, total memo hits, total hash builds)` for the selected
/// properties with the given engine setting.
fn run(suite: &AppSuite, names: &[&str], naive_joins: bool) -> (Vec<Outcome>, u64, u64) {
    let options = VerifyOptions { naive_joins, ..Default::default() };
    let verifier = Verifier::with_options(suite.spec.clone(), options).expect("suite compiles");
    let mut outcomes = Vec::new();
    let (mut hits, mut builds) = (0, 0);
    for case in &suite.properties {
        if !names.contains(&case.name) {
            continue;
        }
        let v = verifier.check_str(&case.text).expect("check runs");
        hits += v.stats.profile.memo_hits;
        builds += v.stats.profile.join_builds;
        outcomes.push(Outcome {
            name: case.name.to_string(),
            verdict: match &v.verdict {
                Verdict::Holds => "holds".into(),
                Verdict::Violated(_) => "violated".into(),
                Verdict::Unknown(b) => format!("unknown({b:?})"),
            },
            configs: v.stats.configs,
            cores: v.stats.cores,
            assignments: v.stats.assignments,
            max_trie: v.stats.max_trie,
            max_run_len: v.stats.max_run_len,
            counterexample: match &v.verdict {
                Verdict::Violated(ce) => Some(verifier.render_counterexample(ce)),
                _ => None,
            },
        });
    }
    (outcomes, hits, builds)
}

/// When the CI matrix sets `WAVE_TEST_JOINS=naive`, even the "default"
/// side of each comparison runs the ablation.
fn default_is_naive() -> bool {
    std::env::var("WAVE_TEST_JOINS").as_deref() == Ok("naive")
}

fn optimized_matches_naive_everywhere(name: &str) {
    let suite = suite(name);
    let excluded: Vec<&str> =
        SWEEP_EXCLUDE.iter().filter(|(s, _)| *s == name).map(|(_, prop)| *prop).collect();
    let names: Vec<&str> =
        suite.properties.iter().map(|c| c.name).filter(|n| !excluded.contains(n)).collect();
    let (engine, hits, _) = run(&suite, &names, default_is_naive());
    let (naive, naive_hits, naive_builds) = run(&suite, &names, true);
    assert_eq!(engine.len(), names.len());
    assert_eq!(engine, naive, "{name}: query engine diverged from nested-loop baseline");
    assert_eq!(naive_hits, 0, "{name}: the ablation must not memoize");
    assert_eq!(naive_builds, 0, "{name}: the ablation must not build hash tables");
    if !default_is_naive() {
        assert!(hits > 0, "{name}: the memo never hit across a whole suite");
    }
}

#[test]
fn e1_query_engine_matches_naive_on_every_property() {
    optimized_matches_naive_everywhere("E1");
}

#[test]
fn e2_query_engine_matches_naive_on_every_property() {
    optimized_matches_naive_everywhere("E2");
}

#[test]
fn e3_query_engine_matches_naive_on_every_property() {
    optimized_matches_naive_everywhere("E3");
}

#[test]
fn e4_query_engine_matches_naive_on_every_property() {
    optimized_matches_naive_everywhere("E4");
}

/// The interpreter baseline ignores the ablation flag entirely: with
/// `--interpret` there are no plans to optimize or memoize, so both
/// settings are the same run.
#[test]
fn interpret_mode_is_unaffected_by_the_ablation_flag() {
    let suite = suite("E2");
    let names = ["Q1", "Q6"];
    for naive in [false, true] {
        let options = VerifyOptions { use_plans: false, naive_joins: naive, ..Default::default() };
        let verifier = Verifier::with_options(suite.spec.clone(), options).unwrap();
        for name in names {
            let case = suite.properties.iter().find(|c| c.name == name).unwrap();
            let v = verifier.check_str(&case.text).expect("check runs");
            assert_eq!(v.stats.profile.memo_hits, 0);
            assert_eq!(v.stats.profile.memo_misses, 0);
            assert_eq!(v.stats.profile.join_builds, 0);
        }
    }
}

/// The committed query bench stays structurally sound: an `opt` and a
/// `naive` row for every property, with identical deterministic columns
/// — the equivalence claim, as committed. (The numeric freshness gate is
/// `wave bench --check` in CI, which re-measures in release mode.)
#[test]
fn committed_query_bench_is_structurally_consistent() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json"))
            .expect("BENCH_query.json is committed at the repo root");
    let json = wave_svc::parse_json(&text).expect("bench file parses");
    let rows = json.get("rows").and_then(wave_svc::Json::as_array).expect("rows array");
    assert!(!rows.is_empty());
    let get =
        |row: &wave_svc::Json, key: &str| row.get(key).cloned().unwrap_or(wave_svc::Json::Null);
    for name in ["E1", "E2", "E3", "E4"] {
        let suite = suite(name);
        for case in &suite.properties {
            let matching: Vec<&wave_svc::Json> = rows
                .iter()
                .filter(|row| {
                    row.get("suite").and_then(wave_svc::Json::as_str) == Some(suite.name)
                        && row.get("prop").and_then(wave_svc::Json::as_str) == Some(case.name)
                })
                .collect();
            let joins = |r: &wave_svc::Json| get(r, "joins").as_str().map(str::to_string);
            assert_eq!(matching.len(), 2, "{name}/{}: one row per mode", case.name);
            let (opt, naive) = (matching[0], matching[1]);
            assert_eq!(joins(opt).as_deref(), Some("opt"));
            assert_eq!(joins(naive).as_deref(), Some("naive"));
            for key in ["verdict", "configs", "cores", "assignments", "max_run_len", "max_trie"] {
                assert_eq!(
                    get(opt, key),
                    get(naive, key),
                    "{name}/{}: {key} differs between engine modes",
                    case.name
                );
            }
            let expected = if case.holds { "holds" } else { "violated" };
            assert_eq!(get(opt, "verdict").as_str(), Some(expected), "{name}/{}", case.name);
        }
    }
}
