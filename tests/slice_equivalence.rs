//! Slice equivalence suite (ISSUE 10): cone-of-influence property
//! slicing — dead-rule skipping, flow-refuted page pruning, memo-mask
//! narrowing, and the monotone delete fast path — must be runtime-inert.
//! Same verdicts, same deterministic search counters, byte-identical
//! counterexample renderings, with the slice on or off, across every
//! property of all four benchmark applications and on a deliberately
//! dirty spec where the slice actually removes work.
//!
//! `WAVE_TEST_SLICE=off` (the CI matrix leg) flips the *default* side
//! of each comparison to the ablation too, so the whole integration
//! test binary also runs green with slicing disabled.

use wave::apps::AppSuite;
use wave::{Verdict, Verifier, VerifyOptions};

/// Heavyweights excluded from the *debug* sweeps, mirroring
/// `query_engine.rs` — release runs and the CI bench gate cover them.
#[cfg(debug_assertions)]
const SWEEP_EXCLUDE: [(&str, &str); 3] = [("E1", "P5"), ("E1", "P7"), ("E3", "R9")];
#[cfg(not(debug_assertions))]
const SWEEP_EXCLUDE: [(&str, &str); 0] = [];

fn suite(name: &str) -> AppSuite {
    match name {
        "E1" => wave::apps::e1::suite(),
        "E2" => wave::apps::e2::suite(),
        "E3" => wave::apps::e3::suite(),
        "E4" => wave::apps::e4::suite(),
        other => panic!("unknown suite {other}"),
    }
}

/// Everything the search determines about one property: verdict shape,
/// the deterministic stats columns, and the rendered counterexample.
/// The memo hit/miss split and the slice counters are deliberately
/// absent — mask narrowing may legally shift hits, and the slice
/// counters *describe* the ablation rather than the result.
#[derive(Debug, PartialEq)]
struct Outcome {
    name: String,
    verdict: String,
    configs: u64,
    cores: u64,
    assignments: u64,
    max_trie: usize,
    max_run_len: usize,
    counterexample: Option<String>,
}

/// `(outcomes, total rules removed, total dead rules)` for the selected
/// properties with the given slice setting.
fn run(suite: &AppSuite, names: &[&str], slice: bool) -> (Vec<Outcome>, u64, u64) {
    let options = VerifyOptions { slice, ..Default::default() };
    let verifier = Verifier::with_options(suite.spec.clone(), options).expect("suite compiles");
    let mut outcomes = Vec::new();
    let (mut removed, mut dead) = (0, 0);
    for case in &suite.properties {
        if !names.contains(&case.name) {
            continue;
        }
        let v = verifier.check_str(&case.text).expect("check runs");
        removed += v.stats.profile.slice_rules_removed;
        dead += v.stats.profile.flow_dead_rules;
        outcomes.push(Outcome {
            name: case.name.to_string(),
            verdict: match &v.verdict {
                Verdict::Holds => "holds".into(),
                Verdict::Violated(_) => "violated".into(),
                Verdict::Unknown(b) => format!("unknown({b:?})"),
            },
            configs: v.stats.configs,
            cores: v.stats.cores,
            assignments: v.stats.assignments,
            max_trie: v.stats.max_trie,
            max_run_len: v.stats.max_run_len,
            counterexample: match &v.verdict {
                Verdict::Violated(ce) => Some(verifier.render_counterexample(ce)),
                _ => None,
            },
        });
    }
    (outcomes, removed, dead)
}

/// When the CI matrix sets `WAVE_TEST_SLICE=off`, even the "default"
/// side of each comparison runs the ablation.
fn default_is_unsliced() -> bool {
    std::env::var("WAVE_TEST_SLICE").as_deref() == Ok("off")
}

fn sliced_matches_unsliced_everywhere(name: &str) {
    let suite = suite(name);
    let excluded: Vec<&str> =
        SWEEP_EXCLUDE.iter().filter(|(s, _)| *s == name).map(|(_, prop)| *prop).collect();
    let names: Vec<&str> =
        suite.properties.iter().map(|c| c.name).filter(|n| !excluded.contains(n)).collect();
    let (sliced, _, _) = run(&suite, &names, !default_is_unsliced());
    let (unsliced, removed, dead) = run(&suite, &names, false);
    assert_eq!(sliced.len(), names.len());
    assert_eq!(sliced, unsliced, "{name}: slicing changed an observable result");
    assert_eq!(removed, 0, "{name}: the ablation must not slice");
    assert_eq!(dead, 0, "{name}: the ablation must not report dead rules");
}

#[test]
fn e1_sliced_matches_unsliced_on_every_property() {
    sliced_matches_unsliced_everywhere("E1");
}

#[test]
fn e2_sliced_matches_unsliced_on_every_property() {
    sliced_matches_unsliced_everywhere("E2");
}

#[test]
fn e3_sliced_matches_unsliced_on_every_property() {
    sliced_matches_unsliced_everywhere("E3");
}

#[test]
fn e4_sliced_matches_unsliced_on_every_property() {
    sliced_matches_unsliced_everywhere("E4");
}

/// A spec where the slice has real work to do: a dead insert (value-set
/// refuted), a dead delete (reads an always-empty relation) whose
/// removal unlocks the monotone fast path on every page, a flow-refuted
/// page, and a mask-narrowed target. Every property must come out
/// byte-identical with the slice on and off, and the sliced run must
/// actually report removals.
const DIRTY: &str = r#"
    spec dirty {
      state { log(entry); ghost(x); }
      inputs { pick(choice); }
      home A;
      page A {
        inputs { pick }
        options pick(c) <- c = "go" | c = "stay";
        insert log(c) <- pick(c);
        insert ghost(c) <- pick(c) & c = "teleport";
        delete log(c) <- ghost(c) & pick(c);
        target B <- pick("go");
        target Ghost <- ghost("x");
      }
      page B {
        inputs { pick }
        options pick(c) <- c = "go" | c = "back";
        target A <- pick("back");
      }
      page Ghost {
        inputs { pick }
        options pick(c) <- c = "go";
        target A <- pick("go");
      }
    }
"#;

#[test]
fn dirty_spec_slices_hard_and_stays_byte_identical() {
    let spec = wave::parse_spec(DIRTY).expect("dirty spec parses");
    let properties = [
        ("ghost-page", "G !@Ghost"),       // holds: page is flow-unreachable
        ("ghost-rel", "G !ghost(\"x\")"),  // holds: relation is always empty
        ("log-grows", "G !log(\"stay\")"), // violated: log(\"stay\") is reachable
        ("back-home", "G (@B -> F @A)"),   // violated: can stay on B forever
    ];
    let mut sides = Vec::new();
    for slice in [true, false] {
        let options = VerifyOptions { slice, ..Default::default() };
        let verifier = Verifier::with_options(spec.clone(), options).expect("compiles");
        let mut outcomes = Vec::new();
        let (mut removed, mut relations, mut dead) = (0, 0, 0);
        for (name, text) in &properties {
            let v = verifier.check_str(text).expect("check runs");
            removed = v.stats.profile.slice_rules_removed;
            relations = v.stats.profile.slice_relations_removed;
            dead = v.stats.profile.flow_dead_rules;
            outcomes.push(Outcome {
                name: (*name).to_string(),
                verdict: match &v.verdict {
                    Verdict::Holds => "holds".into(),
                    Verdict::Violated(_) => "violated".into(),
                    Verdict::Unknown(b) => format!("unknown({b:?})"),
                },
                configs: v.stats.configs,
                cores: v.stats.cores,
                assignments: v.stats.assignments,
                max_trie: v.stats.max_trie,
                max_run_len: v.stats.max_run_len,
                counterexample: match &v.verdict {
                    Verdict::Violated(ce) => Some(verifier.render_counterexample(ce)),
                    _ => None,
                },
            });
        }
        sides.push((outcomes, removed, relations, dead));
    }
    let (sliced, unsliced) = (&sides[0], &sides[1]);
    assert_eq!(sliced.0, unsliced.0, "slicing changed an observable result on the dirty spec");
    assert_eq!(sliced.0[0].verdict, "holds");
    assert_eq!(sliced.0[2].verdict, "violated");
    // the slice did real work (dead insert + dead delete + dead target,
    // plus both rules on the unreachable Ghost page)...
    assert!(sliced.1 >= 3, "rules removed: {}", sliced.1);
    assert_eq!(sliced.2, 1, "ghost is the one always-empty relation");
    assert!(sliced.3 >= 3, "dead rules: {}", sliced.3);
    // ...and the ablation reported none of it
    assert_eq!((unsliced.1, unsliced.2, unsliced.3), (0, 0, 0));
}

/// The interpreter baseline honors the slice too (liveness is checked
/// before rule evaluation, not inside the plan runner), so it stays
/// equivalent under both settings as well.
#[test]
fn interpret_mode_is_sliced_and_equivalent_too() {
    let spec = wave::parse_spec(DIRTY).expect("dirty spec parses");
    let mut verdicts = Vec::new();
    for slice in [true, false] {
        let options = VerifyOptions { use_plans: false, slice, ..Default::default() };
        let verifier = Verifier::with_options(spec.clone(), options).expect("compiles");
        let v = verifier.check_str("G !log(\"stay\")").expect("check runs");
        verdicts.push((
            matches!(v.verdict, Verdict::Violated(_)),
            v.stats.configs,
            v.stats.cores,
            v.stats.assignments,
        ));
    }
    assert_eq!(verdicts[0], verdicts[1]);
}
