//! Tier-equivalence suite (ISSUE 6): the out-of-core tiered state store
//! must be observationally identical to the interned in-memory store —
//! same verdicts, same deterministic search counters, byte-identical
//! counterexample renderings — at a generous memory budget (nothing
//! spills) and at a pathologically small one (the visited set lives
//! mostly in spill segments).
//!
//! The generous-budget tests sweep every property of all four benchmark
//! applications. The forced-spill tests run a per-suite subset chosen
//! so each suite demonstrably spills without dragging the heavyweight
//! properties (E1 P4 peaks at ~82k visited pairs; pushing all of them
//! through one-eviction-per-insert spill churn belongs in the release
//! bench, not a debug test).
//!
//! `WAVE_TEST_STORE=tiered` (the CI matrix leg) additionally flips the
//! *generous* sweeps to a small hot tier — `WAVE_TEST_STORE_MEM_KB`
//! sets the budget in KiB — so the whole equivalence surface runs under
//! spill pressure there too.

use wave::apps::AppSuite;
use wave::core::{
    check_checkpointed, CheckpointConfig, CheckpointOutcome, StateStoreKind, TierParams,
};
use wave::{parse_spec, Verdict, Verifier, VerifyOptions};

/// A hot tier of ~128 slots: properties past ~100 distinct pairs spill.
const TINY_BUDGET_BYTES: u64 = 1152;

/// Per-suite forced-spill subsets: two of the largest visited sets that
/// stay debug-friendly, plus one violated property so counterexample
/// paths cross the spill machinery too.
const SPILL_SUBSET: [(&str, &[&str]); 4] = [
    ("E1", &["P9", "P10", "P3"]),
    ("E2", &["Q12", "Q6"]),
    ("E3", &["R8", "R13", "R5"]),
    ("E4", &["S13", "S2", "S7"]),
];

/// Heavyweights excluded from the *debug* full sweeps — E1 P5 alone is
/// ~6 s in release, which multiplies into minutes across two backends
/// without optimization. Release runs (`cargo test --release`) and the
/// CI bench gate still cover them.
#[cfg(debug_assertions)]
const SWEEP_EXCLUDE: [(&str, &str); 3] = [("E1", "P5"), ("E1", "P7"), ("E3", "R9")];
#[cfg(not(debug_assertions))]
const SWEEP_EXCLUDE: [(&str, &str); 0] = [];

fn suite(name: &str) -> AppSuite {
    match name {
        "E1" => wave::apps::e1::suite(),
        "E2" => wave::apps::e2::suite(),
        "E3" => wave::apps::e3::suite(),
        "E4" => wave::apps::e4::suite(),
        other => panic!("unknown suite {other}"),
    }
}

/// The tiered parameters the generous-budget sweeps run with: 64 MiB by
/// default, or whatever the CI matrix injects through `WAVE_TEST_STORE`
/// / `WAVE_TEST_STORE_MEM_KB`.
fn tiered_params() -> TierParams {
    let mut params = TierParams::default();
    if std::env::var("WAVE_TEST_STORE").as_deref() == Ok("tiered") {
        if let Ok(kb) = std::env::var("WAVE_TEST_STORE_MEM_KB") {
            params.mem_bytes =
                kb.parse::<u64>().expect("WAVE_TEST_STORE_MEM_KB must be a KiB count") << 10;
        }
    }
    params
}

/// Everything a backend determines about one property: verdict shape,
/// the deterministic stats columns, and the rendered counterexample.
#[derive(Debug, PartialEq)]
struct Outcome {
    name: String,
    verdict: String,
    configs: u64,
    cores: u64,
    assignments: u64,
    max_trie: usize,
    max_run_len: usize,
    counterexample: Option<String>,
}

/// `(outcomes, any_spilled)` for the selected properties under `store`.
fn run(suite: &AppSuite, names: Option<&[&str]>, store: StateStoreKind) -> (Vec<Outcome>, bool) {
    let options = VerifyOptions { state_store: store, ..Default::default() };
    let verifier = Verifier::with_options(suite.spec.clone(), options).expect("suite compiles");
    let mut outcomes = Vec::new();
    let mut spilled = false;
    for case in &suite.properties {
        if names.is_some_and(|names| !names.contains(&case.name)) {
            continue;
        }
        let v = verifier.check_str(&case.text).expect("check runs");
        spilled |= v.stats.max_spilled > 0;
        outcomes.push(Outcome {
            name: case.name.to_string(),
            verdict: match &v.verdict {
                Verdict::Holds => "holds".into(),
                Verdict::Violated(_) => "violated".into(),
                Verdict::Unknown(b) => format!("unknown({b:?})"),
            },
            configs: v.stats.configs,
            cores: v.stats.cores,
            assignments: v.stats.assignments,
            max_trie: v.stats.max_trie,
            max_run_len: v.stats.max_run_len,
            counterexample: match &v.verdict {
                Verdict::Violated(ce) => Some(verifier.render_counterexample(ce)),
                _ => None,
            },
        });
    }
    (outcomes, spilled)
}

fn tiered_matches_interned_everywhere(name: &str) {
    let suite = suite(name);
    let excluded: Vec<&str> =
        SWEEP_EXCLUDE.iter().filter(|(s, _)| *s == name).map(|(_, prop)| *prop).collect();
    let names: Vec<&str> =
        suite.properties.iter().map(|c| c.name).filter(|n| !excluded.contains(n)).collect();
    let (interned, _) = run(&suite, Some(&names), StateStoreKind::Interned);
    let (tiered, _) = run(&suite, Some(&names), StateStoreKind::Tiered(tiered_params()));
    assert_eq!(interned.len(), names.len());
    assert_eq!(interned, tiered, "{name}: tiered diverged from interned");
}

#[test]
fn e1_tiered_matches_interned_on_every_property() {
    tiered_matches_interned_everywhere("E1");
}

#[test]
fn e2_tiered_matches_interned_on_every_property() {
    tiered_matches_interned_everywhere("E2");
}

#[test]
fn e3_tiered_matches_interned_on_every_property() {
    tiered_matches_interned_everywhere("E3");
}

#[test]
fn e4_tiered_matches_interned_on_every_property() {
    tiered_matches_interned_everywhere("E4");
}

/// The pathological budget: the subset must actually spill, and still
/// byte-match the interned outcomes.
#[test]
fn forced_spill_matches_interned_on_the_subsets() {
    for (name, props) in SPILL_SUBSET {
        let suite = suite(name);
        let (interned, _) = run(&suite, Some(props), StateStoreKind::Interned);
        let tiny = TierParams { mem_bytes: TINY_BUDGET_BYTES, spill_dir: None };
        let (tiered, spilled) = run(&suite, Some(props), StateStoreKind::Tiered(tiny));
        assert_eq!(interned.len(), props.len(), "{name}: unknown property in subset");
        assert!(spilled, "{name}: the tiny budget must force spilling");
        assert_eq!(interned, tiered, "{name}: forced-spill run diverged from interned");
    }
}

/// A multi-unit workload (Heuristic 1 off widens the unit fan-out, the
/// constant disjuncts widen the `C_∃` assignments) so checkpoints land
/// mid-search — the same shape the core checkpoint tests use.
fn multiunit_verifier(store: StateStoreKind) -> Verifier {
    let spec = parse_spec(
        r#"
        spec tagged {
          database { tag(x); }
          state { seen(x); }
          inputs { pick(x); button(x); }
          home A;
          page A {
            inputs { pick, button }
            options button(x) <- x = "go";
            options pick(x) <- tag(x);
            insert seen(x) <- pick(x) & button("go");
            target B <- (exists x: pick(x)) & button("go");
          }
          page B { target A <- true; }
        }
    "#,
    )
    .unwrap();
    let options = VerifyOptions { heuristic1: false, state_store: store, ..Default::default() };
    Verifier::with_options(spec, options).unwrap()
}

const MULTIUNIT_PROP: &str =
    r#"forall x: G (seen(x) -> (exists y: tag(y)) | x = "go" | x = "other")"#;

/// Kill-and-resume under the tiered backend at the public API level:
/// interrupt after the first checkpoint, resume to completion, and
/// compare verdict + deterministic stats against an uninterrupted
/// interned run.
#[test]
fn kill_and_resume_on_tiered_matches_the_uninterrupted_interned_run() {
    let dir = std::env::temp_dir().join(format!("wave-store-tiered-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let baseline = multiunit_verifier(StateStoreKind::Interned).check_str(MULTIUNIT_PROP).unwrap();
    assert!(baseline.stats.cores > 4, "workload must be multi-core: {:?}", baseline.stats);

    let tiny = TierParams { mem_bytes: 1, spill_dir: None };
    let verifier = multiunit_verifier(StateStoreKind::Tiered(tiny));
    let mut config = CheckpointConfig::new(&dir, 3);
    config.stop_after_checkpoints = Some(1);
    let CheckpointOutcome::Interrupted { checkpoints_written } =
        check_checkpointed(&verifier, MULTIUNIT_PROP, &config).unwrap()
    else {
        panic!("the stop hook must interrupt the run")
    };
    assert_eq!(checkpoints_written, 1);

    config.stop_after_checkpoints = None;
    let CheckpointOutcome::Finished(resumed) =
        check_checkpointed(&verifier, MULTIUNIT_PROP, &config).unwrap()
    else {
        panic!("the resumed run must finish")
    };
    assert_eq!(
        format!("{:?}", baseline.verdict),
        format!("{:?}", resumed.verdict),
        "resume changed the verdict"
    );
    assert_eq!(baseline.stats.configs, resumed.stats.configs);
    assert_eq!(baseline.stats.cores, resumed.stats.cores);
    assert_eq!(baseline.stats.assignments, resumed.stats.assignments);
    assert_eq!(baseline.stats.max_trie, resumed.stats.max_trie);
    assert!(!dir.join("wave.ckpt").exists(), "completion must clear the checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed bench file stays structurally sound: both budgets
/// present for every row pair, verdicts matching the suite
/// expectations, and budget-independent verdict columns. (The full
/// numeric freshness gate is `wave bench --check` in CI, which re-runs
/// the measurements in release mode.)
#[test]
fn committed_bench_file_is_structurally_consistent() {
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json"))
            .expect("BENCH_store.json is committed at the repo root");
    let json = wave_svc::parse_json(&text).expect("bench file parses");
    let rows = json.get("rows").and_then(wave_svc::Json::as_array).expect("rows array");
    assert!(!rows.is_empty());
    for name in ["E1", "E2", "E3", "E4"] {
        let suite = suite(name);
        for case in &suite.properties {
            let mut verdicts = Vec::new();
            for row in rows {
                let same = row.get("suite").and_then(wave_svc::Json::as_str) == Some(suite.name)
                    && row.get("prop").and_then(wave_svc::Json::as_str) == Some(case.name);
                if same {
                    verdicts.push(
                        row.get("verdict").and_then(wave_svc::Json::as_str).unwrap().to_string(),
                    );
                }
            }
            assert_eq!(verdicts.len(), 2, "{name}/{}: one row per budget", case.name);
            assert_eq!(verdicts[0], verdicts[1], "{name}/{}: budget changed verdict", case.name);
            let expected = if case.holds { "holds" } else { "violated" };
            assert_eq!(verdicts[0], expected, "{name}/{}: bench verdict", case.name);
        }
    }
}
