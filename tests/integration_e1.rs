//! Integration test: the complete E1 property suite (the paper's main
//! results table). Every verdict must match the paper's `(true)`/`(false)`
//! annotations, and every verification must be *complete* (the spec and
//! all properties are input-bounded).
//!
//! The slowest properties (P4, P5, P7 — large automata or seven-parameter
//! prefixes) run behind `--ignored` in debug builds; CI runs the suite in
//! release via `cargo test --release -- --include-ignored`.

use wave::apps::e1;
use wave::Verifier;

fn check(name: &str) {
    let suite = e1::suite();
    let case = suite.properties.iter().find(|p| p.name == name).unwrap();
    let verifier = Verifier::new(suite.spec.clone()).expect("E1 compiles");
    let v = verifier.check_str(&case.text).expect("verification runs");
    assert_eq!(v.verdict.holds(), case.holds, "{name} expected {} — {}", case.holds, case.comment);
    assert!(v.complete, "{name}: E1 and its properties are input-bounded");
}

macro_rules! prop_test {
    ($($test:ident => $name:literal),* $(,)?) => {
        $( #[test] fn $test() { check($name); } )*
    };
    (ignored: $($test:ident => $name:literal),* $(,)?) => {
        $( #[test] #[ignore = "slow: run with --release -- --include-ignored"]
           fn $test() { check($name); } )*
    };
}

prop_test! {
    e1_p1_home_eventually_reached => "P1",
    e1_p2_register_leads_to_rp => "P2",
    e1_p3_help_does_not_force_login => "P3",
    e1_p6_not_trapped_home => "P6",
    e1_p8_not_every_run_logs_in => "P8",
    e1_p9_error_page_session => "P9",
    e1_p10_helpseen_monotone => "P10",
    e1_p11_clicking_does_not_force_login => "P11",
    e1_p12_cart_implies_pick => "P12",
    e1_p13_pick_does_not_imply_cart => "P13",
    e1_p14_cancel_without_ship => "P14",
    e1_p15_not_trapped_on_error => "P15",
    e1_p16_home_need_not_recur => "P16",
    e1_p17_reachability_fails => "P17",
}

prop_test! {
    ignored:
    e1_p4_successor_uniqueness => "P4",
    e1_p5_payment_before_confirmation => "P5",
    e1_p7_order_status_before_cancel => "P7",
}

#[test]
fn e1_all_properties_are_input_bounded_with_the_spec() {
    let compiled = wave::spec::CompiledSpec::compile(e1::spec()).unwrap();
    assert!(compiled.is_input_bounded(), "{:?}", compiled.ib_report);
}
