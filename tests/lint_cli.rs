//! End-to-end tests for `wave lint`: every diagnostic code has a golden
//! fixture (a minimal spec/property that triggers it, with the exact
//! rendered output), plus the `--deny`/`--allow` policy knobs, the JSON
//! and SARIF formats, and the lint pre-pass of `wave check`.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn wave_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("wave{}", std::env::consts::EXE_SUFFIX));
    p
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/lint")
}

/// The lint invocation for one fixture: the spec plus any properties
/// listed one-per-line in the optional `<stem>.props` sidecar.
fn lint_args(stem: &str) -> Vec<String> {
    let mut args = vec!["lint".to_string(), format!("{stem}.wave")];
    if let Ok(props) = fs::read_to_string(fixture_dir().join(format!("{stem}.props"))) {
        for line in props.lines().filter(|l| !l.trim().is_empty()) {
            args.push("--property".to_string());
            args.push(line.to_string());
        }
    }
    args
}

#[test]
fn every_diagnostic_code_has_a_fixture_matching_its_golden() {
    let dir = fixture_dir();
    let mut stems: Vec<String> = fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().and_then(|x| x.to_str()) == Some("wave"))
                .then(|| p.file_stem().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    stems.sort();

    // one fixture per registered code, named after it
    for (code, _, _) in wave_lint::CODES {
        assert!(
            stems.iter().any(|s| s.eq_ignore_ascii_case(code)),
            "no fixture for diagnostic {code}"
        );
    }

    for stem in &stems {
        // bare file names in the output: run from inside the fixture dir
        let out = Command::new(wave_bin())
            .args(lint_args(stem))
            .current_dir(&dir)
            .output()
            .expect("wave runs");
        let stdout = String::from_utf8_lossy(&out.stdout);
        let expected = fs::read_to_string(dir.join(format!("{stem}.expected")))
            .unwrap_or_else(|_| panic!("{stem}.expected missing"));
        assert_eq!(stdout, expected, "{stem}: output drifted from golden");
        let code = stem.to_ascii_uppercase();
        assert!(stdout.contains(&format!("[{code}]")), "{stem}: {code} not reported\n{stdout}");
        // error-class findings exit 1, warnings exit 0
        let want = if expected.contains("error[") { 1 } else { 0 };
        assert_eq!(out.status.code(), Some(want), "{stem}: wrong exit code\n{stdout}");
    }
}

#[test]
fn deny_warnings_promotes_and_allow_suppresses() {
    let dir = fixture_dir();
    let denied = Command::new(wave_bin())
        .args(["lint", "w0101.wave", "--deny", "warnings"])
        .current_dir(&dir)
        .output()
        .expect("wave runs");
    assert_eq!(denied.status.code(), Some(1), "{denied:?}");
    assert!(String::from_utf8_lossy(&denied.stdout).contains("error[W0101]"), "{denied:?}");

    let allowed = Command::new(wave_bin())
        .args(["lint", "w0101.wave", "--deny", "warnings", "--allow", "W0101"])
        .current_dir(&dir)
        .output()
        .expect("wave runs");
    assert_eq!(allowed.status.code(), Some(0), "{allowed:?}");
    assert!(allowed.stdout.is_empty(), "{allowed:?}");
}

#[test]
fn json_format_is_machine_readable() {
    let out = Command::new(wave_bin())
        .args(["lint", "w0201.wave", "--format", "json"])
        .current_dir(fixture_dir())
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let json = wave_svc::parse_json(String::from_utf8_lossy(&out.stdout).trim()).expect("json");
    let findings = json.as_array().expect("array");
    assert_eq!(findings.len(), 1, "{json}");
    assert_eq!(findings[0].get("code").unwrap().as_str(), Some("W0201"));
    assert!(findings[0].get("line").unwrap().as_u64().is_some());
}

#[test]
fn sarif_format_carries_rules_and_regions() {
    let out = Command::new(wave_bin())
        .args(["lint", "w0401.wave", "--format", "sarif"])
        .current_dir(fixture_dir())
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let sarif = wave_svc::parse_json(String::from_utf8_lossy(&out.stdout).trim()).expect("sarif");
    assert_eq!(sarif.get("version").unwrap().as_str(), Some("2.1.0"));
    let run = &sarif.get("runs").unwrap().as_array().unwrap()[0];
    let rules = run.get("tool").unwrap().get("driver").unwrap().get("rules").unwrap();
    assert_eq!(rules.as_array().unwrap().len(), wave_lint::CODES.len());
    let results = run.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get("ruleId").unwrap().as_str(), Some("W0401"));
    let region = results[0].get("locations").unwrap().as_array().unwrap()[0]
        .get("physicalLocation")
        .unwrap()
        .get("region")
        .unwrap();
    assert!(region.get("startLine").unwrap().as_u64().is_some());
}

#[test]
fn bundled_specs_lint_clean_under_deny_warnings() {
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs");
    for entry in fs::read_dir(specs).expect("spec dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("wave") {
            continue;
        }
        let out = Command::new(wave_bin())
            .args(["lint", path.to_str().unwrap(), "--deny", "warnings"])
            .output()
            .expect("wave runs");
        assert_eq!(out.status.code(), Some(0), "{path:?}: {out:?}");
        assert!(out.stdout.is_empty(), "{path:?} must lint clean: {out:?}");
    }
}

#[test]
fn check_prints_diagnostics_to_stderr_and_embeds_them_in_json() {
    let dir = fixture_dir();
    // human mode: findings on stderr with source locations, verdict on stdout
    let out = Command::new(wave_bin())
        .args(["check", "w0101.wave", "--property", "G @A", "--max-steps", "2000"])
        .current_dir(&dir)
        .output()
        .expect("wave runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning[W0101]"), "{stderr}");
    assert!(stderr.contains("w0101.wave:10:5"), "{stderr}");
    assert!(stderr.contains("not input-bounded"), "{stderr}");

    // --json: the same findings ride inside the record
    let out = Command::new(wave_bin())
        .args(["check", "w0101.wave", "--property", "G @A", "--max-steps", "2000", "--json"])
        .current_dir(&dir)
        .output()
        .expect("wave runs");
    let record = wave_svc::parse_json(String::from_utf8_lossy(&out.stdout).trim()).expect("json");
    let diags = record.get("diagnostics").expect("diagnostics field").as_array().unwrap();
    assert_eq!(diags[0].get("code").unwrap().as_str(), Some("W0101"));
    assert_eq!(diags[0].get("line").unwrap().as_u64(), Some(10));

    // a clean spec's record carries no diagnostics field at all
    let specs = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs");
    let out = Command::new(wave_bin())
        .args([
            "check",
            specs.join("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
            "--json",
        ])
        .output()
        .expect("wave runs");
    let record = wave_svc::parse_json(String::from_utf8_lossy(&out.stdout).trim()).expect("json");
    assert!(record.get("diagnostics").is_none(), "{record}");
}

#[test]
fn lint_usage_errors_exit_two() {
    let dir = fixture_dir();
    for args in [
        vec!["lint", "w0101.wave", "--format", "xml"],
        vec!["lint", "w0101.wave", "--deny", "everything"],
        vec!["lint", "w0101.wave", "--allow", "W9999"],
        vec!["lint", "w0101.wave", "--allow", "E0001"],
        vec!["lint", "/nonexistent.wave"],
        vec!["lint"],
    ] {
        let out = Command::new(wave_bin()).args(&args).current_dir(&dir).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
    }
}
