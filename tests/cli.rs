//! End-to-end CLI test: drives the `wave` binary as a user would —
//! validating specs, checking properties, reading exit codes and output.

use std::path::PathBuf;
use std::process::Command;

fn wave_bin() -> PathBuf {
    // integration tests live next to the binary under target/<profile>/
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("wave{}", std::env::consts::EXE_SUFFIX));
    p
}

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs").join(name)
}

#[test]
fn validate_reports_inventory_and_input_boundedness() {
    let out = Command::new(wave_bin())
        .args(["validate", spec_path("e2_motogp.wave").to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("15 pages"), "{text}");
    assert!(text.contains("input-bounded: complete verification available"), "{text}");
}

#[test]
fn check_holds_exits_zero() {
    let out = Command::new(wave_bin())
        .args(["check", spec_path("e2_motogp.wave").to_str().unwrap(), "--property", "F @HP"])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));
}

#[test]
fn check_violated_exits_one_with_counterexample() {
    let out = Command::new(wave_bin())
        .args(["check", spec_path("e2_motogp.wave").to_str().unwrap(), "--property", "F @GDP"])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VIOLATED"), "{text}");
    assert!(text.contains("cycle repeats"), "{text}");
}

#[test]
fn budget_exhaustion_exits_three() {
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e1_shop.wave").to_str().unwrap(),
            "--property",
            "G (@HP -> X (@HP | @CP | @EP | @RP | @HLP | @ABP))",
            "--max-steps",
            "10",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

/// Strip the timing-dependent parts of a `--json` record (wall-clock
/// and the per-phase profile); everything else must be byte-stable.
fn normalized_json(stdout: &[u8]) -> String {
    let text = String::from_utf8_lossy(stdout);
    let wave_svc::Json::Obj(mut pairs) = wave_svc::parse_json(text.trim()).expect("json record")
    else {
        panic!("record is an object: {text}")
    };
    for (key, value) in pairs.iter_mut() {
        if key == "stats" {
            if let wave_svc::Json::Obj(stats) = value {
                stats.retain(|(k, _)| k != "elapsed_ms" && k != "profile");
            }
        }
    }
    wave_svc::Json::Obj(pairs).to_string()
}

#[test]
fn budgeted_json_is_identical_across_jobs() {
    // one exhausting budget (verdict + budget string) and one generous
    // budget on a violated property (counterexample shape): both must be
    // byte-identical between --jobs 1 and --jobs 8, and stable run-to-run
    let cases = [
        ("e1_shop.wave", "G (@HP -> X (@HP | @CP | @EP | @RP | @HLP | @ABP))", "200"),
        ("e2_motogp.wave", "F @GDP", "2000000"),
    ];
    for (spec, property, budget) in cases {
        let run = |jobs: &str| {
            let out = Command::new(wave_bin())
                .args([
                    "check",
                    spec_path(spec).to_str().unwrap(),
                    "--property",
                    property,
                    "--max-steps",
                    budget,
                    "--json",
                    "--jobs",
                    jobs,
                ])
                .output()
                .expect("wave runs");
            (normalized_json(&out.stdout), out.status.code())
        };
        let (seq, seq_code) = run("1");
        for jobs in ["2", "8"] {
            let (par, par_code) = run(jobs);
            assert_eq!(seq, par, "{spec} {property:?}: --jobs {jobs} diverged");
            assert_eq!(seq_code, par_code, "{spec} {property:?}: exit code diverged");
        }
        let (again, _) = run("8");
        assert_eq!(seq, again, "{spec} {property:?}: unstable across runs");
    }
}

#[test]
fn deadline_exhaustion_never_reports_time_zero() {
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e1_shop.wave").to_str().unwrap(),
            "--property",
            "G (@HP -> X (@HP | @CP | @EP | @RP | @HLP | @ABP))",
            "--time-limit",
            "0.000001",
            "--json",
            "--jobs",
            "2",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let record = wave_svc::parse_json(String::from_utf8_lossy(&out.stdout).trim()).unwrap();
    let budget = record.get("budget").and_then(wave_svc::Json::as_str).expect("budget field");
    let secs: f64 = budget.strip_prefix("time:").expect("time budget").parse().unwrap();
    assert!(secs > 0.0, "deadline must report actual elapsed, got {budget:?}");
}

#[test]
fn bad_usage_exits_two() {
    for args in [
        vec!["check", "/nonexistent.wave", "--property", "F @HP"],
        vec!["check"],
        vec!["frobnicate"],
    ] {
        let out = Command::new(wave_bin()).args(&args).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
    }
}

#[test]
fn automaton_prints_components_and_states() {
    let out = Command::new(wave_bin())
        .args(["automaton", "--property", "p() U q()"])
        .output()
        .expect("wave runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P0 := p()"), "{text}");
    assert!(text.contains("Buchi automaton"), "{text}");
}

#[test]
fn check_json_emits_record_and_keeps_exit_codes() {
    // holds → exit 0
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
            "--json",
            "--jobs",
            "4",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"verdict\":\"holds\""), "{text}");
    assert!(text.contains("\"complete\":true"), "{text}");

    // violated → exit 1, with the counterexample lasso shape
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @GDP",
            "--json",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"verdict\":\"violated\""), "{text}");
    assert!(text.contains("\"ce_steps\":"), "{text}");
}

#[test]
fn batch_runs_jobs_and_reuses_the_disk_cache() {
    let dir = std::env::temp_dir().join(format!("wave-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = dir.join("jobs.jsonl");
    std::fs::write(
        &jobs,
        format!(
            "{{\"suite\":\"E1\",\"property\":\"P1\"}}\n\
             {{\"spec_path\":{:?},\"property\":\"F @GDP\",\"name\":\"moto\"}}\n",
            spec_path("e2_motogp.wave").to_str().unwrap()
        ),
    )
    .unwrap();
    let cache = dir.join("cache");
    let run = || {
        Command::new(wave_bin())
            .args([
                "batch",
                jobs.to_str().unwrap(),
                "--jobs",
                "4",
                "--cache-dir",
                cache.to_str().unwrap(),
            ])
            .output()
            .expect("wave runs")
    };

    let first = run();
    assert_eq!(first.status.code(), Some(0), "{first:?}");
    let lines: Vec<String> =
        String::from_utf8_lossy(&first.stdout).lines().map(String::from).collect();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert!(lines[0].contains("\"verdict\":\"holds\""), "{}", lines[0]);
    assert!(lines[1].contains("\"name\":\"moto\""), "{}", lines[1]);
    assert!(lines[1].contains("\"verdict\":\"violated\""), "{}", lines[1]);
    assert!(lines[0].contains("\"cached\":false"), "{}", lines[0]);

    assert!(lines[0].contains("\"profile_source\":\"fresh\""), "{}", lines[0]);

    // a second process sees the on-disk cache: same verdicts, no search,
    // but the profile persisted from the original run comes back
    let second = run();
    assert_eq!(second.status.code(), Some(0), "{second:?}");
    for line in String::from_utf8_lossy(&second.stdout).lines() {
        assert!(line.contains("\"cached\":true"), "{line}");
        assert!(line.contains("\"cores\":0"), "{line}");
        assert!(line.contains("\"profile_source\":\"cached\""), "{line}");
    }
    let verdict = |out: &std::process::Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.split("\"verdict\":").nth(1).unwrap().split(',').next().unwrap().to_string())
            .collect()
    };
    assert_eq!(verdict(&first), verdict(&second), "cached verdicts must not change");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_reports_errors_with_exit_two() {
    let dir = std::env::temp_dir().join(format!("wave-batch-err-{}.jsonl", std::process::id()));
    std::fs::write(&dir, "{\"suite\":\"E9\"}\n").unwrap();
    let out = Command::new(wave_bin())
        .args(["batch", dir.to_str().unwrap(), "--no-cache"])
        .output()
        .expect("wave runs");
    std::fs::remove_file(&dir).ok();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"verdict\":\"error\""), "{out:?}");
}

#[test]
fn trace_out_round_trips_through_summarize() {
    let dir = std::env::temp_dir().join(format!("wave-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");

    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
            "--trace-out",
            trace.to_str().unwrap(),
            "--quiet",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty(), "trace file is empty");
    for line in text.lines() {
        assert!(line.starts_with("{\"v\":2,\"ev\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    let out = Command::new(wave_bin())
        .args(["trace", "summarize", trace.to_str().unwrap(), "--top", "3"])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(summary.contains("event counts:"), "{summary}");
    assert!(summary.contains("expand"), "{summary}");
    assert!(summary.contains("expansion depth histogram:"), "{summary}");
    assert!(summary.contains("top 3 expansions by duration:"), "{summary}");

    // tracing only instruments the sequential search
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
            "--trace-out",
            trace.to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fmt_output_reparses() {
    let out = Command::new(wave_bin())
        .args(["fmt", spec_path("e2_motogp.wave").to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert!(out.status.success(), "{out:?}");
    // the printed spec must itself validate
    let dir = std::env::temp_dir().join(format!("wave-fmt-{}.wave", std::process::id()));
    std::fs::write(&dir, &out.stdout).unwrap();
    let out2 = Command::new(wave_bin())
        .args(["validate", dir.to_str().unwrap()])
        .output()
        .expect("wave runs");
    std::fs::remove_file(&dir).ok();
    assert!(out2.status.success(), "{out2:?}");
}
