//! End-to-end CLI test: drives the `wave` binary as a user would —
//! validating specs, checking properties, reading exit codes and output.

use std::path::PathBuf;
use std::process::Command;

fn wave_bin() -> PathBuf {
    // integration tests live next to the binary under target/<profile>/
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push(format!("wave{}", std::env::consts::EXE_SUFFIX));
    p
}

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../apps/specs").join(name)
}

#[test]
fn validate_reports_inventory_and_input_boundedness() {
    let out = Command::new(wave_bin())
        .args(["validate", spec_path("e2_motogp.wave").to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("15 pages"), "{text}");
    assert!(text.contains("input-bounded: complete verification available"), "{text}");
}

#[test]
fn check_holds_exits_zero() {
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @HP",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("HOLDS"));
}

#[test]
fn check_violated_exits_one_with_counterexample() {
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e2_motogp.wave").to_str().unwrap(),
            "--property",
            "F @GDP",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("VIOLATED"), "{text}");
    assert!(text.contains("cycle repeats"), "{text}");
}

#[test]
fn budget_exhaustion_exits_three() {
    let out = Command::new(wave_bin())
        .args([
            "check",
            spec_path("e1_shop.wave").to_str().unwrap(),
            "--property",
            "G (@HP -> X (@HP | @CP | @EP | @RP | @HLP | @ABP))",
            "--max-steps",
            "10",
        ])
        .output()
        .expect("wave runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn bad_usage_exits_two() {
    for args in [
        vec!["check", "/nonexistent.wave", "--property", "F @HP"],
        vec!["check"],
        vec!["frobnicate"],
    ] {
        let out = Command::new(wave_bin()).args(&args).output().expect("runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
    }
}

#[test]
fn automaton_prints_components_and_states() {
    let out = Command::new(wave_bin())
        .args(["automaton", "--property", "p() U q()"])
        .output()
        .expect("wave runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P0 := p()"), "{text}");
    assert!(text.contains("Buchi automaton"), "{text}");
}

#[test]
fn fmt_output_reparses() {
    let out = Command::new(wave_bin())
        .args(["fmt", spec_path("e2_motogp.wave").to_str().unwrap()])
        .output()
        .expect("wave runs");
    assert!(out.status.success(), "{out:?}");
    // the printed spec must itself validate
    let dir = std::env::temp_dir().join(format!("wave-fmt-{}.wave", std::process::id()));
    std::fs::write(&dir, &out.stdout).unwrap();
    let out2 = Command::new(wave_bin())
        .args(["validate", dir.to_str().unwrap()])
        .output()
        .expect("wave runs");
    std::fs::remove_file(&dir).ok();
    assert!(out2.status.success(), "{out2:?}");
}
