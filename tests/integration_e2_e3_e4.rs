//! Integration tests: the E2, E3 and E4 property suites. The fast
//! properties run unconditionally; slower ones are `--ignored` for debug
//! runs and included in release CI.

use wave::apps::{e2, e3, e4, AppSuite};
use wave::Verifier;

fn check(suite: &AppSuite, name: &str) {
    let case = suite.properties.iter().find(|p| p.name == name).unwrap();
    let verifier = Verifier::new(suite.spec.clone()).expect("spec compiles");
    let v = verifier.check_str(&case.text).expect("verification runs");
    assert_eq!(v.verdict.holds(), case.holds, "{name} expected {} — {}", case.holds, case.comment);
}

#[test]
fn e2_full_suite_runs_with_matching_verdicts() {
    // E2 is browsing-only and fast: run the entire 13-property suite
    let suite = e2::suite();
    let rows = suite.run_all(wave::VerifyOptions::default()).expect("suite runs");
    for r in &rows {
        assert_eq!(r.measured_holds, Some(r.expected), "{}: expected {}", r.name, r.expected);
    }
    assert_eq!(rows.len(), 13);
}

#[test]
fn e3_fast_properties() {
    let suite = e3::suite();
    for name in ["R1", "R4", "R5", "R10", "R12"] {
        check(&suite, name);
    }
}

#[test]
#[ignore = "slow: run with --release -- --include-ignored"]
fn e3_remaining_properties() {
    let suite = e3::suite();
    for name in ["R2", "R3", "R6", "R7", "R8", "R9", "R11", "R13", "R14"] {
        check(&suite, name);
    }
}

#[test]
fn e4_fast_properties() {
    let suite = e4::suite();
    for name in ["S1", "S4", "S5", "S10", "S12"] {
        check(&suite, name);
    }
}

#[test]
#[ignore = "slow: run with --release -- --include-ignored"]
fn e4_remaining_properties() {
    let suite = e4::suite();
    for name in ["S2", "S3", "S6", "S7", "S8", "S9", "S11", "S13", "S14"] {
        check(&suite, name);
    }
}

#[test]
fn all_four_specs_compile_input_bounded() {
    for (name, spec) in [("E2", e2::spec()), ("E3", e3::spec()), ("E4", e4::spec())] {
        let compiled = wave::spec::CompiledSpec::compile(spec).unwrap();
        assert!(compiled.is_input_bounded(), "{name}: {:?}", compiled.ib_report);
    }
}
