//! End-to-end DSL test: parse a specification from text, verify properties
//! through the public API, inspect the counterexample, and check error
//! reporting for malformed inputs — the full user journey.

use wave::{parse_spec, Verdict, Verifier};

const SRC: &str = r#"
    # a tiny order-processing workflow
    spec orders {
      database { catalog(item, price); }
      state { basket(item, price); paidfor(item, price); }
      action { receipt(item, price); }
      inputs { choose(item, price); button(x); }
      home SHOP;

      page SHOP {
        inputs { choose, button }
        options button(x) <- x = "add" | x = "pay";
        options choose(i, p) <- catalog(i, p);
        insert basket(i, p) <- choose(i, p) & button("add");
        target PAY <- button("pay");
      }

      page PAY {
        inputs { choose, button }
        options button(x) <- x = "confirm" | x = "back";
        options choose(i, p) <- catalog(i, p);
        insert paidfor(i, p) <- choose(i, p) & basket(i, p) & button("confirm");
        action receipt(i, p) <- choose(i, p) & basket(i, p) & button("confirm");
        target SHOP <- button("back") | button("confirm");
      }
    }
"#;

#[test]
fn the_workflow_verifies() {
    let spec = parse_spec(SRC).expect("parses");
    assert!(spec.validate().is_ok());
    let verifier = Verifier::new(spec).expect("compiles");

    // receipts only for basket items, in the catalog price — holds
    let v = verifier.check_str("forall i, p: G (receipt(i, p) -> basket(i, p))").expect("runs");
    assert!(v.verdict.holds(), "{v:?}");
    assert!(v.complete);

    // payment implies the item was added strictly before (add happens on
    // SHOP, confirm on PAY — different steps) — holds
    let v = verifier.check_str("forall i, p: basket(i, p) B paidfor(i, p)").expect("runs");
    assert!(v.verdict.holds(), "{v:?}");

    // "every run pays for something" — refuted with a lasso counterexample
    let v = verifier.check_str("F (exists i, p: choose(i, p))").expect("runs");
    let Verdict::Violated(ce) = &v.verdict else {
        panic!("expected a violation, got {:?}", v.verdict)
    };
    assert!(ce.cycle_start < ce.steps.len());
    let rendered = verifier.render_counterexample(ce);
    assert!(rendered.contains("page SHOP"), "{rendered}");
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse_spec("spec broken { home X }").unwrap_err();
    assert!(err.pos > 0);
    assert!(!err.message.is_empty());
}

#[test]
fn validation_errors_are_collected() {
    let spec = parse_spec(
        r#"
        spec invalid {
          inputs { b(x); }
          home NOPE;
          page P {
            inputs { b }
            options b(x) <- x = "k";
            target GHOST <- true;
          }
        }
    "#,
    )
    .expect("syntactically fine");
    let errs = spec.validate().unwrap_err();
    assert!(errs.len() >= 2, "missing home page AND unknown target: {errs:?}");
}

#[test]
fn property_parse_errors_are_reported() {
    let spec = parse_spec(SRC).unwrap();
    let verifier = Verifier::new(spec).unwrap();
    assert!(verifier.check_str("G (").is_err());
}

#[test]
fn non_input_bounded_spec_still_verifies_incompletely() {
    let spec = parse_spec(
        r#"
        spec outside {
          database { d(a); }
          state { s(a); }
          inputs { pick(x); }
          home P;
          page P {
            inputs { pick }
            options pick(x) <- d(x);
            insert s(x) <- pick(x);
            target Q <- forall v: s(v) -> d(v);
          }
          page Q { target P <- true; }
        }
    "#,
    )
    .unwrap();
    let verifier = Verifier::new(spec).unwrap();
    let v = verifier.check_str("G (@Q -> X @P)").expect("runs");
    assert!(!v.complete, "universal over a database relation is not input-bounded");
    assert!(v.verdict.holds(), "{v:?}");
}

#[test]
fn universe_overflow_is_a_typed_error_not_a_wrong_answer() {
    // a property whose parameters flood every column of a wide relation:
    // with Heuristic 1 disabled, the core universe exceeds the enumeration
    // cap and wave must refuse rather than silently truncate
    let spec = parse_spec(
        r#"
        spec wide {
          database { w(a, b, c); }
          inputs { pick(x); }
          home P;
          page P {
            inputs { pick }
            options pick(x) <- exists b, c: w(x, b, c);
            target P <- true;
          }
        }
    "#,
    )
    .unwrap();
    let mut verifier = Verifier::new(spec).unwrap();
    verifier.options_mut().heuristic1 = false;
    let err = verifier.check_str(r#"forall x, y, z: G !w(x, y, z)"#).unwrap_err();
    let text = err.to_string();
    assert!(text.contains("universe"), "{text}");
}
